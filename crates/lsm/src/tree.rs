//! The leveled LSM tree.
//!
//! Structure, after LevelDB:
//!
//! * a mutable **memtable** (ordered map) fronted by the [`Wal`];
//! * **level 0**: flushed memtables, newest first, with overlapping key
//!   ranges;
//! * **levels 1+**: runs of non-overlapping SSTables; each level targets
//!   `level_multiplier ×` the size of the previous one.
//!
//! Reads consult memtable → L0 (newest first) → L1+ (at most one table per
//! level, found by range + Bloom filter). Writes go to WAL + memtable;
//! exceeding `memtable_bytes` flushes to L0; L0 reaching
//! `l0_compaction_trigger` tables (or a level exceeding its size target)
//! triggers compaction into the next level.
//!
//! The tree also keeps the read/write-amplification counters that the
//! λIndexFS experiment (paper §5.7) uses to cost IndexFS-side operations.

use std::collections::BTreeMap;
use std::ops::Bound;

use bytes::Bytes;

use crate::sstable::{Entry, SsTable};
use crate::wal::{Wal, WalRecord};

/// Tuning knobs for an [`LsmTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsmConfig {
    /// Flush the memtable when it reaches this many bytes.
    pub memtable_bytes: usize,
    /// Compact L0 into L1 when it holds this many tables.
    pub l0_compaction_trigger: usize,
    /// Each level targets this multiple of the previous level's size.
    pub level_multiplier: usize,
    /// Base size target of L1 in bytes.
    pub l1_target_bytes: usize,
    /// Sparse-index anchor interval for built SSTables.
    pub index_interval: usize,
    /// Bloom filter bits per key.
    pub bloom_bits_per_key: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_bytes: 64 * 1024,
            l0_compaction_trigger: 4,
            level_multiplier: 10,
            l1_target_bytes: 256 * 1024,
            index_interval: 16,
            bloom_bits_per_key: 10,
        }
    }
}

/// Cumulative counters for amplification accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// User-level put/delete operations.
    pub user_writes: u64,
    /// User-level get operations.
    pub user_reads: u64,
    /// Bytes written to SSTables (flushes + compactions) — the numerator
    /// of write amplification.
    pub bytes_compacted: u64,
    /// Bytes accepted from users — the denominator of write amplification.
    pub bytes_ingested: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// SSTables whose Bloom filter rejected a lookup.
    pub bloom_skips: u64,
    /// SSTables actually probed during lookups.
    pub tables_probed: u64,
}

impl LsmStats {
    /// Write amplification: SSTable bytes written per ingested byte.
    #[must_use]
    pub fn write_amplification(&self) -> f64 {
        if self.bytes_ingested == 0 {
            0.0
        } else {
            self.bytes_compacted as f64 / self.bytes_ingested as f64
        }
    }

    /// Mean SSTables probed per user read.
    #[must_use]
    pub fn read_amplification(&self) -> f64 {
        if self.user_reads == 0 {
            0.0
        } else {
            self.tables_probed as f64 / self.user_reads as f64
        }
    }
}

/// What a crash-recovery pass did: how much of the WAL was lost vs
/// replayed, and the SSTable work the replay itself triggered. The durable
/// store backend costs recovery sim-time from these counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Unsynced WAL records dropped by the crash (the lost window).
    pub lost_records: u64,
    /// Bytes of dropped WAL records.
    pub lost_bytes: u64,
    /// Surviving WAL records replayed into the rebuilt memtable.
    pub replayed_records: u64,
    /// Bytes of replayed WAL records.
    pub replayed_bytes: u64,
    /// Memtable flushes the replay triggered.
    pub flushes: u64,
    /// Compactions the replay triggered.
    pub compactions: u64,
    /// SSTable bytes written during the replay (flushes + compactions).
    pub bytes_compacted: u64,
}

/// A log-structured merge tree (LevelDB analog).
///
/// # Examples
///
/// ```
/// use lambda_lsm::{LsmConfig, LsmTree};
///
/// let mut tree = LsmTree::new(LsmConfig::default());
/// tree.put(b"/dir/file", b"inode-metadata");
/// assert_eq!(tree.get(b"/dir/file").as_deref(), Some(&b"inode-metadata"[..]));
/// tree.delete(b"/dir/file");
/// assert_eq!(tree.get(b"/dir/file"), None);
/// ```
#[derive(Debug)]
pub struct LsmTree {
    config: LsmConfig,
    wal: Wal,
    memtable: BTreeMap<Bytes, Entry>,
    memtable_bytes: usize,
    /// `levels[0]` is L0 (newest table first); `levels[i>=1]` are sorted,
    /// non-overlapping runs.
    levels: Vec<Vec<SsTable>>,
    /// WAL sequence number of the newest record applied to the memtable.
    /// Normally equals `wal.last_seq()` (every append is applied
    /// immediately); during crash-replay it trails behind, and it is the
    /// flush checkpoint — a flush covers exactly the applied prefix, so
    /// [`Wal::truncate_upto`] must not discard anything above it.
    applied_seq: u64,
    stats: LsmStats,
}

impl LsmTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new(config: LsmConfig) -> Self {
        LsmTree {
            config,
            wal: Wal::new(),
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            levels: vec![Vec::new()],
            applied_seq: 0,
            stats: LsmStats::default(),
        }
    }

    /// Replaces the tuning knobs in place (e.g. recovering under a smaller
    /// memory budget than the writer ran with). Takes effect lazily: an
    /// over-threshold memtable flushes on the next write.
    pub fn reconfigure(&mut self, config: LsmConfig) {
        self.config = config;
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> LsmStats {
        self.stats
    }

    /// The write-ahead log (inspection aid).
    #[must_use]
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Number of SSTables per level, L0 first.
    #[must_use]
    pub fn level_table_counts(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Inserts or replaces a key. Returns the mutation's WAL sequence
    /// number (the write is volatile until that sequence is synced or
    /// flushed; see [`LsmTree::sync_wal`]).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> u64 {
        let key = Bytes::copy_from_slice(key);
        let value = Bytes::copy_from_slice(value);
        let seq = self.wal.append(WalRecord::Put { key: key.clone(), value: value.clone() });
        self.applied_seq = seq;
        self.stats.user_writes += 1;
        self.stats.bytes_ingested += (key.len() + value.len()) as u64;
        self.apply(key, Entry::Put(value));
        seq
    }

    /// Deletes a key (writes a tombstone). Returns the mutation's WAL
    /// sequence number, like [`LsmTree::put`].
    pub fn delete(&mut self, key: &[u8]) -> u64 {
        let key = Bytes::copy_from_slice(key);
        let seq = self.wal.append(WalRecord::Delete { key: key.clone() });
        self.applied_seq = seq;
        self.stats.user_writes += 1;
        self.stats.bytes_ingested += key.len() as u64;
        self.apply(key, Entry::Tombstone);
        seq
    }

    /// Makes every appended WAL record durable — one group-commit `fsync`.
    /// A subsequent crash cannot lose anything at or below the returned
    /// sequence number.
    pub fn sync_wal(&mut self) -> u64 {
        self.wal.mark_synced();
        self.wal.synced_seq()
    }

    /// Newest durable WAL sequence number: records above it would be lost
    /// by a crash right now. Advanced by [`LsmTree::sync_wal`] and by
    /// flushes (an SSTable persists the records it covers).
    #[must_use]
    pub fn durable_seq(&self) -> u64 {
        self.wal.synced_seq()
    }

    /// Sequence number of the newest mutation ever accepted.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.wal.last_seq()
    }

    fn apply(&mut self, key: Bytes, entry: Entry) {
        let added = key.len() + entry.size_bytes();
        let removed = self
            .memtable
            .insert(key, entry)
            .map_or(0, |old| old.size_bytes());
        self.memtable_bytes = self.memtable_bytes + added - removed.min(self.memtable_bytes);
        if self.memtable_bytes >= self.config.memtable_bytes {
            self.flush();
        }
    }

    /// Point lookup.
    #[must_use]
    pub fn get(&mut self, key: &[u8]) -> Option<Bytes> {
        self.stats.user_reads += 1;
        if let Some(entry) = self.memtable.get(key) {
            return entry.value().cloned();
        }
        // L0: newest table first; ranges overlap, so check each.
        for table in &self.levels[0] {
            if !table.key_in_range(key) {
                continue;
            }
            if !table.may_contain(key) {
                self.stats.bloom_skips += 1;
                continue;
            }
            self.stats.tables_probed += 1;
            if let Some(entry) = table.get(key) {
                return entry.value().cloned();
            }
        }
        // L1+: at most one candidate table per level.
        for level in &self.levels[1..] {
            let idx = level.partition_point(|t| {
                t.last_key().is_some_and(|last| last.as_ref() < key)
            });
            let Some(table) = level.get(idx) else { continue };
            if !table.key_in_range(key) {
                continue;
            }
            if !table.may_contain(key) {
                self.stats.bloom_skips += 1;
                continue;
            }
            self.stats.tables_probed += 1;
            if let Some(entry) = table.get(key) {
                return entry.value().cloned();
            }
        }
        None
    }

    /// Ordered scan of live keys in `[lo, hi)`.
    #[must_use]
    pub fn scan(&self, lo: &[u8], hi: &[u8]) -> Vec<(Bytes, Bytes)> {
        // Merge all sources newest-first into a map: first writer wins.
        let mut merged: BTreeMap<Bytes, Entry> = BTreeMap::new();
        let mem_range = self.memtable.range::<[u8], _>((Bound::Included(lo), Bound::Excluded(hi)));
        for (k, e) in mem_range {
            merged.entry(k.clone()).or_insert_with(|| e.clone());
        }
        for table in &self.levels[0] {
            for (k, e) in table.range(lo, hi) {
                merged.entry(k.clone()).or_insert_with(|| e.clone());
            }
        }
        for level in &self.levels[1..] {
            for table in level {
                if !table.overlaps(lo, hi) {
                    continue;
                }
                for (k, e) in table.range(lo, hi) {
                    merged.entry(k.clone()).or_insert_with(|| e.clone());
                }
            }
        }
        merged
            .into_iter()
            .filter_map(|(k, e)| e.value().cloned().map(|v| (k, v)))
            .collect()
    }

    /// Flushes the memtable into a new L0 table and truncates the WAL up
    /// to the flush checkpoint (`applied_seq` — the newest mutation the
    /// memtable actually holds). During normal operation that equals the
    /// newest WAL record; during crash replay it trails, and the
    /// checkpoint keeps the unreplayed tail retained.
    ///
    /// No-op when the memtable is empty.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let rows: Vec<(Bytes, Entry)> = std::mem::take(&mut self.memtable).into_iter().collect();
        self.memtable_bytes = 0;
        let table =
            SsTable::build(rows, self.config.index_interval, self.config.bloom_bits_per_key);
        self.stats.bytes_compacted += table.size_bytes() as u64;
        self.stats.flushes += 1;
        self.levels[0].insert(0, table);
        self.wal.truncate_upto(self.applied_seq);
        self.maybe_compact();
    }

    /// Ordered scan of **all** live keys — [`LsmTree::scan`] without range
    /// bounds. Used by the durable store backend's post-crash consistency
    /// check (shadow state ↔ authoritative tables).
    #[must_use]
    pub fn scan_all(&self) -> Vec<(Bytes, Bytes)> {
        let mut merged: BTreeMap<Bytes, Entry> = BTreeMap::new();
        for (k, e) in &self.memtable {
            merged.entry(k.clone()).or_insert_with(|| e.clone());
        }
        for table in &self.levels[0] {
            for (k, e) in table.rows() {
                merged.entry(k.clone()).or_insert_with(|| e.clone());
            }
        }
        for level in &self.levels[1..] {
            for table in level {
                for (k, e) in table.rows() {
                    merged.entry(k.clone()).or_insert_with(|| e.clone());
                }
            }
        }
        merged
            .into_iter()
            .filter_map(|(k, e)| e.value().cloned().map(|v| (k, v)))
            .collect()
    }

    /// Simulates a crash and runs recovery: the unsynced WAL tail and all
    /// volatile state (memtable) are discarded, then the surviving WAL
    /// prefix is replayed in sequence order on top of the persisted
    /// SSTables. Returns what recovery cost — the caller converts the
    /// record/byte counts into simulated downtime.
    ///
    /// Replay re-executes only the memtable application, not the original
    /// write: records are **not** re-appended to the WAL and user-facing
    /// ingest stats don't double-count. Auto-flushes triggered mid-replay
    /// are safe because [`LsmTree::flush`] truncates only up to the replay
    /// cursor (`applied_seq`).
    pub fn crash_and_recover(&mut self) -> RecoveryReport {
        let before = self.stats;
        let (lost_records, lost_bytes) = self.wal.drop_unsynced_tail();
        self.memtable.clear();
        self.memtable_bytes = 0;
        // Nothing replayed yet: the flush checkpoint starts at the durable
        // horizon and advances with the replay cursor below.
        self.applied_seq = self.wal.synced_seq();
        let replay: Vec<(u64, WalRecord)> =
            self.wal.entries().map(|(s, r)| (s, r.clone())).collect();
        let mut replayed = 0u64;
        let mut replayed_bytes = 0u64;
        for (seq, record) in replay {
            self.applied_seq = seq;
            replayed += 1;
            replayed_bytes += record.size_bytes() as u64;
            match record {
                WalRecord::Put { key, value } => self.apply(key, Entry::Put(value)),
                WalRecord::Delete { key } => self.apply(key, Entry::Tombstone),
            }
        }
        RecoveryReport {
            lost_records,
            lost_bytes,
            replayed_records: replayed,
            replayed_bytes,
            flushes: self.stats.flushes - before.flushes,
            compactions: self.stats.compactions - before.compactions,
            bytes_compacted: self.stats.bytes_compacted - before.bytes_compacted,
        }
    }

    fn level_target_bytes(&self, level: usize) -> usize {
        debug_assert!(level >= 1);
        let mut target = self.config.l1_target_bytes;
        for _ in 1..level {
            target = target.saturating_mul(self.config.level_multiplier);
        }
        target
    }

    fn level_size_bytes(&self, level: usize) -> usize {
        self.levels.get(level).map_or(0, |ts| ts.iter().map(SsTable::size_bytes).sum())
    }

    fn maybe_compact(&mut self) {
        // Cascade: compacting into level i may overflow level i.
        loop {
            if self.levels[0].len() >= self.config.l0_compaction_trigger {
                self.compact_level(0);
                continue;
            }
            let mut compacted = false;
            for level in 1..self.levels.len() {
                if self.level_size_bytes(level) > self.level_target_bytes(level) {
                    self.compact_level(level);
                    compacted = true;
                    break;
                }
            }
            if !compacted {
                break;
            }
        }
    }

    /// Merges all of `level` (L0) or its oldest table (L1+) into the next
    /// level.
    fn compact_level(&mut self, level: usize) {
        if self.levels.len() <= level + 1 {
            self.levels.push(Vec::new());
        }
        // Inputs from the source level.
        let sources: Vec<SsTable> = if level == 0 {
            std::mem::take(&mut self.levels[0])
        } else if self.levels[level].is_empty() {
            return;
        } else {
            vec![self.levels[level].remove(0)]
        };
        if sources.is_empty() {
            return;
        }
        let lo = sources.iter().filter_map(SsTable::first_key).min().cloned();
        let hi = sources.iter().filter_map(SsTable::last_key).max().cloned();
        let (Some(lo), Some(hi)) = (lo, hi) else { return };
        // Pull in every overlapping table from the target level.
        let target = &mut self.levels[level + 1];
        let mut overlapping = Vec::new();
        let mut i = 0;
        while i < target.len() {
            if target[i].overlaps(&lo, &hi) {
                overlapping.push(target.remove(i));
            } else {
                i += 1;
            }
        }
        // Merge newest-first: L0 order within `sources` is newest first, and
        // sources shadow the (older) overlapping target tables.
        let mut merged: BTreeMap<Bytes, Entry> = BTreeMap::new();
        for table in sources.iter().chain(overlapping.iter()) {
            for (k, e) in table.rows() {
                merged.entry(k.clone()).or_insert_with(|| e.clone());
            }
        }
        // Dropping tombstones is safe only at the bottom level.
        let bottom = self.levels.len() == level + 2 && self.levels[level + 1].is_empty();
        let rows: Vec<(Bytes, Entry)> = merged
            .into_iter()
            .filter(|(_, e)| !(bottom && *e == Entry::Tombstone))
            .collect();
        self.stats.compactions += 1;
        if rows.is_empty() {
            return;
        }
        let table =
            SsTable::build(rows, self.config.index_interval, self.config.bloom_bits_per_key);
        self.stats.bytes_compacted += table.size_bytes() as u64;
        // Insert keeping the level sorted by first key (non-overlapping).
        let target = &mut self.levels[level + 1];
        let pos = target.partition_point(|t| t.first_key() < table.first_key());
        target.insert(pos, table);
        debug_assert!(
            target.windows(2).all(|w| w[0].last_key() < w[1].first_key()),
            "L{} tables overlap after compaction",
            level + 1
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> LsmConfig {
        LsmConfig {
            memtable_bytes: 256,
            l0_compaction_trigger: 3,
            level_multiplier: 4,
            l1_target_bytes: 1024,
            index_interval: 4,
            bloom_bits_per_key: 10,
        }
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut t = LsmTree::new(LsmConfig::default());
        t.put(b"a", b"1");
        t.put(b"b", b"2");
        assert_eq!(t.get(b"a").as_deref(), Some(&b"1"[..]));
        t.put(b"a", b"1x");
        assert_eq!(t.get(b"a").as_deref(), Some(&b"1x"[..]));
        t.delete(b"a");
        assert_eq!(t.get(b"a"), None);
        assert_eq!(t.get(b"b").as_deref(), Some(&b"2"[..]));
    }

    #[test]
    fn reads_survive_flushes_and_compactions() {
        let mut t = LsmTree::new(small_config());
        for i in 0..500 {
            t.put(format!("key{i:05}").as_bytes(), format!("value{i}").as_bytes());
        }
        // Small thresholds force many flushes + compactions.
        assert!(t.stats().flushes > 3);
        assert!(t.stats().compactions > 0);
        for i in 0..500 {
            let got = t.get(format!("key{i:05}").as_bytes());
            assert_eq!(got.as_deref(), Some(format!("value{i}").as_bytes()), "key{i:05}");
        }
    }

    #[test]
    fn newest_version_wins_across_levels() {
        let mut t = LsmTree::new(small_config());
        for round in 0..6 {
            for i in 0..50 {
                t.put(format!("k{i:03}").as_bytes(), format!("r{round}").as_bytes());
            }
            t.flush();
        }
        for i in 0..50 {
            assert_eq!(t.get(format!("k{i:03}").as_bytes()).as_deref(), Some(&b"r5"[..]));
        }
    }

    #[test]
    fn tombstones_shadow_older_versions_across_flushes() {
        let mut t = LsmTree::new(small_config());
        t.put(b"doomed", b"v");
        t.flush();
        t.delete(b"doomed");
        t.flush();
        assert_eq!(t.get(b"doomed"), None);
        // Force compactions; the tombstone must keep shadowing or be
        // dropped together with the value.
        for i in 0..300 {
            t.put(format!("fill{i:04}").as_bytes(), b"x");
        }
        assert_eq!(t.get(b"doomed"), None);
    }

    #[test]
    fn scan_merges_all_sources_in_order() {
        let mut t = LsmTree::new(small_config());
        t.put(b"c", b"3");
        t.flush();
        t.put(b"a", b"1");
        t.flush();
        t.put(b"b", b"2");
        t.delete(b"c");
        let rows = t.scan(b"a", b"z");
        let keys: Vec<&[u8]> = rows.iter().map(|(k, _)| k.as_ref()).collect();
        assert_eq!(keys, vec![&b"a"[..], &b"b"[..]]);
    }

    #[test]
    fn scan_range_bounds_are_half_open() {
        let mut t = LsmTree::new(LsmConfig::default());
        for k in ["a", "b", "c", "d"] {
            t.put(k.as_bytes(), b"v");
        }
        let rows = t.scan(b"b", b"d");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0.as_ref(), b"b");
        assert_eq!(rows[1].0.as_ref(), b"c");
    }

    #[test]
    fn wal_truncates_on_flush() {
        let mut t = LsmTree::new(LsmConfig::default());
        t.put(b"k", b"v");
        assert_eq!(t.wal().len(), 1);
        t.flush();
        assert!(t.wal().is_empty());
        assert_eq!(t.wal().total_appends(), 1);
    }

    #[test]
    fn amplification_counters_move() {
        let mut t = LsmTree::new(small_config());
        for i in 0..400 {
            t.put(format!("k{i:04}").as_bytes(), b"vvvvvvvvvvvvvvvv");
        }
        let s = t.stats();
        assert!(s.write_amplification() >= 1.0, "wamp {}", s.write_amplification());
        let _ = t.get(b"k0001");
        assert!(t.stats().user_reads >= 1);
    }

    #[test]
    fn levels_stay_sorted_and_disjoint() {
        let mut t = LsmTree::new(small_config());
        for i in (0..600).rev() {
            t.put(format!("k{i:05}").as_bytes(), b"payload-payload");
        }
        t.flush();
        for level in 1..t.levels.len() {
            let tables = &t.levels[level];
            for w in tables.windows(2) {
                assert!(w[0].last_key() < w[1].first_key(), "L{level} overlap");
            }
        }
    }
}
