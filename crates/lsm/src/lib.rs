//! # lambda-lsm
//!
//! A log-structured merge tree — the reproduction's stand-in for LevelDB,
//! which vanilla IndexFS uses to pack metadata into SSTables and which
//! λIndexFS keeps as its persistent metadata store (paper §4 "Porting λFS
//! to IndexFS" and §5.7).
//!
//! The tree is a real data structure, not a model: write-ahead log,
//! ordered memtable, leveled SSTables with sparse indexes and Bloom
//! filters, tombstones, and cascading compaction. The IndexFS baseline
//! costs its storage operations using the amplification counters in
//! [`LsmStats`].
//!
//! ```
//! use lambda_lsm::{LsmConfig, LsmTree};
//!
//! let mut db = LsmTree::new(LsmConfig::default());
//! db.put(b"/users/alice/notes.txt", b"inode:17");
//! db.put(b"/users/alice/todo.txt", b"inode:18");
//! let files = db.scan(b"/users/alice/", b"/users/alice0");
//! assert_eq!(files.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bloom;
mod sstable;
mod tree;
mod wal;

pub use bloom::BloomFilter;
pub use sstable::{Entry, SsTable};
pub use tree::{LsmConfig, LsmStats, LsmTree, RecoveryReport};
pub use wal::{Wal, WalRecord};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[derive(Debug, Clone)]
    enum Op {
        Put(u16, u8),
        Delete(u16),
        Flush,
        Scan(u16, u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 512, v)),
            2 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
            1 => Just(Op::Flush),
            1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Scan(a % 512, b % 512)),
        ]
    }

    fn key(k: u16) -> Vec<u8> {
        format!("k{k:05}").into_bytes()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The LSM tree behaves exactly like an ordered map under any
        /// sequence of puts, deletes, flushes, and scans — including the
        /// compactions those flushes trigger.
        #[test]
        fn lsm_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut tree = LsmTree::new(LsmConfig {
                memtable_bytes: 128,
                l0_compaction_trigger: 2,
                level_multiplier: 3,
                l1_target_bytes: 512,
                index_interval: 3,
                bloom_bits_per_key: 8,
            });
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for op in &ops {
                match op {
                    Op::Put(k, v) => {
                        let (k, v) = (key(*k), vec![*v]);
                        tree.put(&k, &v);
                        model.insert(k, v);
                    }
                    Op::Delete(k) => {
                        let k = key(*k);
                        tree.delete(&k);
                        model.remove(&k);
                    }
                    Op::Flush => tree.flush(),
                    Op::Scan(a, b) => {
                        let (lo, hi) = (key(*a.min(b)), key(*a.max(b)));
                        let got: Vec<(Vec<u8>, Vec<u8>)> = tree
                            .scan(&lo, &hi)
                            .into_iter()
                            .map(|(k, v)| (k.to_vec(), v.to_vec()))
                            .collect();
                        let want: Vec<(Vec<u8>, Vec<u8>)> = model
                            .range(lo..hi)
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect();
                        prop_assert_eq!(got, want);
                    }
                }
            }
            // Final full point-read check.
            for k in 0..512u16 {
                let k = key(k);
                prop_assert_eq!(tree.get(&k).map(|b| b.to_vec()), model.get(&k).cloned());
            }
        }
    }
}
