//! Crash/replay differential tests for the LSM tree.
//!
//! The model under test: every mutation is WAL-logged before it is
//! applied, syncs and flushes advance the durability horizon, and a crash
//! loses exactly the unsynced tail — recovery replays the surviving WAL
//! prefix and must reconstruct the pre-crash durable state exactly,
//! including tombstones and in-flight memtable contents.

use std::collections::BTreeMap;

use lambda_lsm::{LsmConfig, LsmTree};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Flush,
    Sync,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 256, v)),
        3 => any::<u16>().prop_map(|k| Op::Delete(k % 256)),
        1 => Just(Op::Flush),
        2 => Just(Op::Sync),
        1 => Just(Op::Crash),
    ]
}

fn key(k: u16) -> Vec<u8> {
    format!("key{k:05}").into_bytes()
}

fn tiny_config() -> LsmConfig {
    // Small thresholds so the op sequences exercise auto-flushes and
    // compactions, not just the memtable.
    LsmConfig {
        memtable_bytes: 160,
        l0_compaction_trigger: 2,
        level_multiplier: 3,
        l1_target_bytes: 512,
        index_interval: 3,
        bloom_bits_per_key: 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Differential crash/replay check: a shadow model tracks both the
    /// live state (`now`) and the durable state (`durable`, what a crash
    /// must roll back to). After every crash — at an arbitrary point in a
    /// random put/delete/flush/sync interleaving — the recovered tree must
    /// equal the durable model exactly, and the recovery report's lost
    /// window must match the ops issued since the last durability point.
    #[test]
    fn wal_replay_reconstructs_pre_crash_state(
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        let mut tree = LsmTree::new(tiny_config());
        let mut now: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut durable = now.clone();
        let mut unsynced: u64 = 0;

        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    let (k, v) = (key(*k), vec![*v]);
                    let before = tree.stats().flushes;
                    tree.put(&k, &v);
                    now.insert(k, v);
                    unsynced += 1;
                    if tree.stats().flushes > before {
                        // Auto-flush persists everything applied so far.
                        durable = now.clone();
                        unsynced = 0;
                    }
                }
                Op::Delete(k) => {
                    let k = key(*k);
                    let before = tree.stats().flushes;
                    tree.delete(&k);
                    now.remove(&k);
                    unsynced += 1;
                    if tree.stats().flushes > before {
                        durable = now.clone();
                        unsynced = 0;
                    }
                }
                Op::Flush => {
                    tree.flush();
                    durable = now.clone();
                    unsynced = 0;
                }
                Op::Sync => {
                    tree.sync_wal();
                    durable = now.clone();
                    unsynced = 0;
                }
                Op::Crash => {
                    let report = tree.crash_and_recover();
                    prop_assert_eq!(report.lost_records, unsynced);
                    now = durable.clone();
                    unsynced = 0;
                    // The recovered tree must match the durable model on
                    // every key in the domain (point reads) and as a whole
                    // (scan), tombstones included.
                    let got: Vec<(Vec<u8>, Vec<u8>)> = tree
                        .scan_all()
                        .into_iter()
                        .map(|(k, v)| (k.to_vec(), v.to_vec()))
                        .collect();
                    let want: Vec<(Vec<u8>, Vec<u8>)> =
                        now.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                    prop_assert_eq!(got, want);
                }
            }
        }

        // Final check regardless of whether the sequence ended in a crash.
        for k in 0..256u16 {
            let k = key(k);
            prop_assert_eq!(tree.get(&k).map(|b| b.to_vec()), now.get(&k).cloned());
        }
    }
}

/// Regression for the unconditional-truncate bug: a flush during recovery
/// replay must truncate the WAL only up to the replay cursor. With the old
/// `Wal::truncate`, the first recovery's auto-flush would discard the
/// not-yet-replayed WAL tail, so a *second* crash silently lost durable
/// records. Two back-to-back recoveries must both be lossless.
#[test]
fn flush_during_replay_keeps_the_wal_tail_replayable() {
    // Large memtable: nothing flushes while the workload runs.
    let mut tree = LsmTree::new(LsmConfig {
        memtable_bytes: 1 << 20,
        ..tiny_config()
    });
    for i in 0..64u32 {
        tree.put(format!("row{i:04}").as_bytes(), format!("val{i}").as_bytes());
    }
    tree.sync_wal();

    // Shrink the memtable so replay auto-flushes partway through the WAL.
    tree.reconfigure(LsmConfig { memtable_bytes: 160, ..tiny_config() });

    let first = tree.crash_and_recover();
    assert_eq!(first.lost_records, 0);
    assert_eq!(first.replayed_records, 64);
    assert!(first.flushes >= 1, "replay must trigger auto-flushes");

    // Second crash immediately after: every record was durable (synced or
    // flushed), so recovery must again lose nothing…
    let second = tree.crash_and_recover();
    assert_eq!(second.lost_records, 0);

    // …and the full state must still be readable.
    for i in 0..64u32 {
        assert_eq!(
            tree.get(format!("row{i:04}").as_bytes()).as_deref(),
            Some(format!("val{i}").as_bytes()),
            "row{i:04} lost after flush-then-crash"
        );
    }
}

/// A crash with nothing synced rolls back to the last flush checkpoint.
#[test]
fn unsynced_writes_are_the_lost_window()  {
    let mut tree = LsmTree::new(LsmConfig::default());
    tree.put(b"kept", b"1");
    tree.flush();
    tree.put(b"lost-a", b"2");
    tree.delete(b"kept");
    let report = tree.crash_and_recover();
    assert_eq!(report.lost_records, 2);
    assert_eq!(report.replayed_records, 0);
    assert_eq!(tree.get(b"kept").as_deref(), Some(&b"1"[..]));
    assert_eq!(tree.get(b"lost-a"), None);
}
