//! Reporting utilities: ASCII tables, series printers, argument parsing,
//! machine-readable result files, and a bounded parallel runner for
//! experiment sweeps.

use std::path::PathBuf;
use std::thread;
use std::time::Instant;

/// Formats an ops/sec magnitude compactly ("45.7k", "1.2M").
#[must_use]
pub fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Formats milliseconds with sensible precision.
#[must_use]
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}ms")
    } else if ms >= 1.0 {
        format!("{ms:.2}ms")
    } else {
        format!("{:.0}us", ms * 1000.0)
    }
}

/// Prints an aligned ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Prints one or more aligned per-second series, sampling every
/// `stride` buckets.
pub fn print_series(title: &str, labels: &[&str], series: &[Vec<f64>], stride: usize) {
    let stride = stride.max(1);
    let len = series.iter().map(Vec::len).max().unwrap_or(0);
    let mut headers = vec!["t(s)"];
    headers.extend_from_slice(labels);
    let rows: Vec<Vec<String>> = (0..len)
        .step_by(stride)
        .map(|t| {
            let mut row = vec![t.to_string()];
            for s in series {
                row.push(s.get(t).map_or("-".to_string(), |v| fmt_ops(*v)));
            }
            row
        })
        .collect();
    print_table(title, &headers, &rows);
}

/// Reads `--name=value` from the process arguments, with a default.
#[must_use]
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// Reads an integer `--name=value` (e.g. a seed) from the process
/// arguments, with a default. Unlike going through [`arg_f64`] and
/// casting, large seeds survive without losing low bits to the `f64`
/// mantissa.
#[must_use]
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// Reads a `--flag` boolean from the process arguments.
#[must_use]
pub fn arg_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

/// Reads a `usize` `--name=value` (a count: threads, domains, clients)
/// from the process arguments, with a default.
#[must_use]
pub fn arg_usize(name: &str, default: usize) -> usize {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// The sweep/shard thread width every benchmark binary uses, resolved in
/// priority order: the `LAMBDA_BENCH_THREADS` environment variable, then
/// a `--threads=N` argument, then the machine's available parallelism.
///
/// Thread width never changes any simulated result — figure sweeps
/// preserve job order and the sharded engine is thread-count-invariant by
/// construction — so this knob only trades wall-clock time for cores.
#[must_use]
pub fn bench_threads() -> usize {
    if let Some(n) = std::env::var("LAMBDA_BENCH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    let fallback = thread::available_parallelism().map(usize::from).unwrap_or(4);
    arg_usize("threads", fallback).max(1)
}

/// The number of hardware threads on the machine running the bench, as
/// reported by [`std::thread::available_parallelism`]. Recorded in every
/// bench JSON that reports wall-clock speedups so the numbers stay
/// interpretable off-host: a `speedup_vs_1 ≈ 1.0` sweep is *expected* on
/// a `host_cores = 1` box, and evidence of a bug on a 32-core one.
#[must_use]
pub fn host_cores() -> usize {
    thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// The experiment scale factor: 1.0 = the paper's full scale. Defaults to
/// a 5× reduction (load, resources, and store capacity shrink together, so
/// the figures' shapes are preserved); `--full` forces 1.0.
#[must_use]
pub fn scale_from_args() -> f64 {
    if arg_flag("full") {
        1.0
    } else {
        arg_f64("scale", 5.0).max(1.0)
    }
}

/// Runs jobs on up to [`bench_threads`] threads, preserving order, and
/// prints a wall-clock summary of the sweep when it finishes.
///
/// Each job builds its own simulation, so jobs are fully independent.
pub fn run_parallel<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let width = bench_threads();
    let n_jobs = jobs.len();
    let started = Instant::now();
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    let mut jobs: Vec<Option<F>> = jobs.into_iter().map(Some).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let jobs_ref = std::sync::Mutex::new(&mut jobs);
    let results_ref = std::sync::Mutex::new(&mut results);
    thread::scope(|scope| {
        for _ in 0..width {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let job = {
                    let mut jobs = jobs_ref.lock().expect("jobs lock");
                    match jobs.get_mut(idx) {
                        Some(slot) => slot.take(),
                        None => return,
                    }
                };
                let Some(job) = job else { return };
                let out = job();
                results_ref.lock().expect("results lock")[idx] = Some(out);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "[wall-clock] {n_jobs} simulation{} on {width} thread{} in {elapsed:.2}s",
        if n_jobs == 1 { "" } else { "s" },
        if width == 1 { "" } else { "s" },
    );
    results.into_iter().map(|r| r.expect("job completed")).collect()
}

/// Like [`run_parallel`], plus a per-job wall-clock productivity line:
/// each job's simulated-operation count (extracted by `ops` from its
/// result) divided by the wall time that job took on its worker thread.
///
/// Every line is prefixed `[wall-clock]` so golden-output diffs can
/// filter the runtime-dependent part, exactly like [`run_parallel`]'s
/// sweep summary.
pub fn run_parallel_ops<T, F>(jobs: Vec<F>, ops: impl Fn(&T) -> u64) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let timed: Vec<_> = jobs
        .into_iter()
        .map(|job| {
            move || {
                let started = Instant::now();
                let out = job();
                (out, started.elapsed().as_secs_f64())
            }
        })
        .collect();
    let results = run_parallel(timed);
    results
        .into_iter()
        .enumerate()
        .map(|(i, (out, wall))| {
            let n = ops(&out);
            let rate = if wall > 0.0 { n as f64 / wall } else { 0.0 };
            println!(
                "[wall-clock] job {i}: {n} sim-ops in {wall:.2}s ({} sim-ops/wall-sec)",
                fmt_ops(rate),
            );
            out
        })
        .collect()
}

/// Formats an events-per-second wall-clock rate for run summaries.
#[must_use]
pub fn fmt_events_per_sec(events: u64, wall_secs: f64) -> String {
    if wall_secs <= 0.0 {
        return "-".to_string();
    }
    format!("{} events/s", fmt_ops(events as f64 / wall_secs))
}

/// Writes a machine-readable result file to `results/<name>.json`
/// (creating the directory if needed) and returns its path.
///
/// # Panics
///
/// Panics if the file cannot be written — a benchmark whose results vanish
/// silently is worse than one that fails.
pub fn write_json(name: &str, json: &str) -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json).expect("write results file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_picks_units() {
        assert_eq!(fmt_ops(532.0), "532");
        assert_eq!(fmt_ops(45_690.0), "45.7k");
        assert_eq!(fmt_ops(1_230_000.0), "1.23M");
        assert_eq!(fmt_ms(0.5), "500us");
        assert_eq!(fmt_ms(10.58), "10.58ms");
        assert_eq!(fmt_ms(163.0), "163ms");
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..32usize).map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>).collect();
        let out = run_parallel(jobs);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_ops_runner_preserves_order_and_results() {
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> =
            (0..8u64).map(|i| Box::new(move || i + 100) as Box<dyn FnOnce() -> u64 + Send>).collect();
        let out = run_parallel_ops(jobs, |r| *r);
        assert_eq!(out, (0..8).map(|i| i + 100).collect::<Vec<_>>());
    }

    #[test]
    fn thread_width_env_override_wins() {
        // Not a great fit for parallel test execution, but the variable is
        // namespaced to this one test's scope and restored immediately.
        std::env::set_var("LAMBDA_BENCH_THREADS", "3");
        assert_eq!(bench_threads(), 3);
        std::env::set_var("LAMBDA_BENCH_THREADS", "0");
        assert!(bench_threads() >= 1, "zero falls through to the default");
        std::env::remove_var("LAMBDA_BENCH_THREADS");
        assert!(bench_threads() >= 1);
    }
}
