//! Repository line-count inventory (the reproduction's analog of the
//! paper's Table 1).

use std::fs;
use std::path::Path;

/// Lines of Rust code per component (crate or directory).
#[derive(Debug, Clone)]
pub struct LocEntry {
    /// Component name.
    pub component: String,
    /// Total non-empty lines in `.rs` files.
    pub lines: usize,
    /// Number of `.rs` files.
    pub files: usize,
}

fn count_dir(dir: &Path) -> (usize, usize) {
    let mut lines = 0;
    let mut files = 0;
    let Ok(entries) = fs::read_dir(dir) else { return (0, 0) };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            let (l, f) = count_dir(&path);
            lines += l;
            files += f;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(content) = fs::read_to_string(&path) {
                lines += content.lines().filter(|l| !l.trim().is_empty()).count();
                files += 1;
            }
        }
    }
    (lines, files)
}

/// Counts lines per workspace component, rooted at the workspace
/// directory containing `crates/`.
#[must_use]
pub fn inventory(workspace_root: &Path) -> Vec<LocEntry> {
    let mut out = Vec::new();
    let crates = workspace_root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            if dir.is_dir() {
                let (lines, files) = count_dir(&dir);
                out.push(LocEntry {
                    component: format!(
                        "crates/{}",
                        dir.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                    ),
                    lines,
                    files,
                });
            }
        }
    }
    for extra in ["examples", "tests", "src"] {
        let dir = workspace_root.join(extra);
        if dir.is_dir() {
            let (lines, files) = count_dir(&dir);
            out.push(LocEntry { component: extra.to_string(), lines, files });
        }
    }
    out
}

/// Locates the workspace root from this crate's manifest dir.
#[must_use]
pub fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap_or_else(|_| {
        std::env::current_dir().expect("cwd")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_sees_this_workspace() {
        let entries = inventory(&workspace_root());
        assert!(entries.iter().any(|e| e.component == "crates/sim"));
        let total: usize = entries.iter().map(|e| e.lines).sum();
        assert!(total > 5_000, "suspiciously small workspace: {total} lines");
    }
}
