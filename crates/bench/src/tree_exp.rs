//! λIndexFS vs IndexFS experiment runner behind Fig. 16 (§5.7).

use std::rc::Rc;

use lambda_baselines::{IndexFs, IndexFsConfig, LambdaIndexFs, LambdaIndexFsConfig};
use lambda_sim::Sim;
use lambda_workload::{run_tree_test, TreeTestConfig};

/// Which §5.7 system a tree-test run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeSystem {
    /// Vanilla IndexFS on BeeGFS.
    IndexFs,
    /// λIndexFS.
    LambdaIndexFs,
}

impl TreeSystem {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TreeSystem::IndexFs => "indexfs",
            TreeSystem::LambdaIndexFs => "lambda-indexfs",
        }
    }
}

/// One Fig. 16 data point.
#[derive(Debug, Clone)]
pub struct TreePoint {
    /// System label.
    pub system: String,
    /// Number of clients.
    pub clients: u32,
    /// Write (mknod) throughput, ops/sec.
    pub write_throughput: f64,
    /// Read (getattr) throughput, ops/sec.
    pub read_throughput: f64,
    /// Aggregate (writes-followed-by-reads) throughput, ops/sec.
    pub aggregate_throughput: f64,
}

/// Runs one tree-test point. `ops_per_client == None` selects the
/// fixed-sized workload (`fixed_total` split across clients).
#[must_use]
pub fn run_tree_point(
    system: TreeSystem,
    clients: u32,
    ops_per_client: Option<usize>,
    fixed_total: usize,
    seed: u64,
) -> TreePoint {
    let mut sim = Sim::new(seed);
    let cfg = match ops_per_client {
        Some(n) => TreeTestConfig { ops_per_client: n, ..TreeTestConfig::variable() },
        None => TreeTestConfig::fixed(fixed_total, clients as usize),
    };
    let run = match system {
        TreeSystem::IndexFs => {
            let fs =
                Rc::new(IndexFs::build(&mut sim, IndexFsConfig { clients, ..Default::default() }));
            run_tree_test(&mut sim, fs, cfg)
        }
        TreeSystem::LambdaIndexFs => {
            let fs = Rc::new(LambdaIndexFs::build(
                &mut sim,
                LambdaIndexFsConfig { clients, ..Default::default() },
            ));
            fs.start(&mut sim);
            // Warm every deployment before the measured phases: the
            // paper's runs are long enough for cold starts to vanish in
            // the average; scaled runs are not.
            for d in 0..16 {
                let path = format!("/warm_d{d}/probe").parse().expect("valid path");
                fs.submit(
                    &mut sim,
                    0,
                    lambda_baselines::TreeOp::Mknod(path),
                    Box::new(|_sim, _ok| {}),
                );
            }
            sim.run_for(lambda_sim::SimDuration::from_secs(5));
            let run = run_tree_test(&mut sim, Rc::clone(&fs), cfg);
            fs.stop(&mut sim);
            run
        }
    };
    TreePoint {
        system: system.label().to_string(),
        clients,
        write_throughput: run.write_throughput,
        read_throughput: run.read_throughput,
        aggregate_throughput: run.aggregate_throughput,
    }
}
