//! The industrial-workload experiment runner behind Figures 8, 9, 10,
//! and 15.

use std::rc::Rc;

use lambda_baselines::{CephFs, CephFsConfig, HopsFs, HopsFsConfig, InfiniCacheStyle};
use lambda_fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambda_namespace::OpClass;
use lambda_sim::params::StoreParams;
use lambda_sim::{every, Sim, SimDuration, SimTime};
use lambda_workload::{run_spotify, SpotifyConfig};

/// Which system an industrial run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// λFS with default knobs.
    Lambda,
    /// λFS with the cache capped below the working-set size (§5.2.3).
    LambdaReducedCache,
    /// Vanilla HopsFS.
    Hops,
    /// HopsFS+Cache.
    HopsCache,
    /// Cost-normalized HopsFS+Cache (vCPUs matched to λFS's dollars).
    HopsCacheCostNormalized,
    /// The InfiniCache-style fixed FaaS deployment.
    InfiniCache,
    /// The CephFS-style MDS cluster.
    Ceph,
}

impl SystemKind {
    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Lambda => "lambda-fs",
            SystemKind::LambdaReducedCache => "lambda-fs (reduced cache)",
            SystemKind::Hops => "hopsfs",
            SystemKind::HopsCache => "hopsfs+cache",
            SystemKind::HopsCacheCostNormalized => "cn hopsfs+cache",
            SystemKind::InfiniCache => "infinicache-style",
            SystemKind::Ceph => "cephfs",
        }
    }
}

/// Parameters of one industrial run, already scaled.
#[derive(Debug, Clone)]
pub struct IndustrialParams {
    /// Full-scale base throughput (e.g. 25 000); the runner divides by
    /// `scale`.
    pub base_throughput: f64,
    /// Full-scale workload duration in seconds.
    pub duration_secs: u64,
    /// The shrink factor (1.0 = paper scale).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Kill one NameNode this often, round-robin over deployments
    /// (§5.6's fault-injection schedule), if set.
    pub kill_every: Option<SimDuration>,
    /// Override the total vCPU budget (used by the cost-normalized
    /// variant).
    pub vcpus_override: Option<u32>,
}

impl IndustrialParams {
    /// The §5.2 configuration at the given scale and seed.
    #[must_use]
    pub fn spotify(base_throughput: f64, scale: f64, seed: u64) -> Self {
        IndustrialParams {
            base_throughput,
            duration_secs: 300,
            scale: scale.max(1.0),
            seed,
            kill_every: None,
            vcpus_override: None,
        }
    }

    fn vcpus(&self) -> u32 {
        // Floor: every λFS deployment must be able to host one 5-vCPU
        // instance, and HopsFS at least two 16-vCPU NameNodes.
        let full = self.vcpus_override.unwrap_or(512);
        ((f64::from(full) / self.scale) as u32).max(64)
    }

    fn clients(&self) -> u32 {
        ((1024.0 / self.scale) as u32).max(16)
    }

    fn store(&self) -> StoreParams {
        StoreParams::default().slowed(self.scale)
    }

    /// The workload configuration at this scale (public so the memory
    /// bench can bootstrap the exact tree the industrial figures use).
    #[must_use]
    pub fn spotify_config(&self) -> SpotifyConfig {
        SpotifyConfig {
            base_throughput: self.base_throughput / self.scale,
            duration: SimDuration::from_secs((self.duration_secs as f64 / self.scale.sqrt()) as u64),
            dirs: ((2048.0 / self.scale) as usize).max(64),
            files_per_dir: 48,
            ..Default::default()
        }
    }
}

/// Everything a figure needs from one run.
#[derive(Debug, Clone)]
pub struct IndustrialReport {
    /// The system's label.
    pub system: String,
    /// Offered load per second (identical across systems at one seed).
    pub offered_per_sec: Vec<f64>,
    /// Completed operations per second (the Fig. 8 curve).
    pub throughput_per_sec: Vec<f64>,
    /// Mean achieved throughput.
    pub avg_throughput: f64,
    /// Peak throughput sustained over a full 15 s burst interval.
    pub peak_sustained: f64,
    /// Mean end-to-end latency, ms.
    pub avg_latency_ms: f64,
    /// Per-class `(class, mean ms, p50 ms, p99 ms)`.
    pub latency_by_class: Vec<(String, f64, f64, f64)>,
    /// Per-class latency CDFs `(class, Vec<(ms, fraction)>)` (Fig. 10).
    pub cdf_by_class: Vec<(String, Vec<(f64, f64)>)>,
    /// Operations generated / completed / timed out.
    pub generated: u64,
    /// Completed operations.
    pub completed: u64,
    /// Operations that exhausted retries.
    pub timeouts: u64,
    /// Active NameNodes sampled each second (λFS family; empty
    /// otherwise).
    pub namenodes_per_sec: Vec<f64>,
    /// Cumulative dollars at each second (pay-per-use for FaaS systems,
    /// VM billing for serverful ones) — the Fig. 9 curves.
    pub cost_cumulative: Vec<f64>,
    /// Cumulative dollars under the "simplified" provisioned model (λFS
    /// family; empty otherwise).
    pub cost_simplified_cumulative: Vec<f64>,
    /// Total cost.
    pub cost_total: f64,
    /// Performance-per-cost per second (ops/sec per dollar/sec) —
    /// Fig. 8(c).
    pub perf_per_cost_per_sec: Vec<f64>,
    /// vCPUs provisioned (serverful) or capped (FaaS).
    pub vcpus: u32,
    /// Retry attempts.
    pub retries: u64,
    /// Straggler-mitigation resubmissions.
    pub straggler_resubmits: u64,
    /// Times a client entered anti-thrashing mode.
    pub anti_thrash_entries: u64,
    /// HTTP RPCs issued.
    pub http_rpcs: u64,
    /// TCP RPCs issued.
    pub tcp_rpcs: u64,
}

#[allow(clippy::too_many_arguments)]
fn collect_report<S: DfsService>(
    system: &S,
    label: &str,
    offered: Vec<f64>,
    generated: u64,
    nn_series: Vec<f64>,
    cost_cumulative: Vec<f64>,
    cost_simplified: Vec<f64>,
    vcpus: u32,
    workload_secs: f64,
) -> IndustrialReport {
    let metrics = system.run_metrics();
    let mut metrics = metrics.borrow_mut();
    let throughput = metrics.throughput.buckets();
    // Average over the workload window only (from the first offered-load
    // bucket, for the workload duration): backlog drained after the
    // workload ends does not count toward average throughput, exactly as
    // the paper reports HopsFS "catching up" without credit.
    let window_start = offered.iter().position(|v| *v > 0.0).unwrap_or(0);
    let window_end = (window_start + workload_secs as usize).min(throughput.len());
    let avg_throughput = if window_end > window_start {
        throughput[window_start..window_end].iter().sum::<f64>()
            / (window_end - window_start) as f64
    } else {
        0.0
    };
    let peak_sustained = metrics.peak_sustained_throughput(15);
    let avg_latency_ms = metrics.mean_latency().as_millis_f64();
    let mut latency_by_class = Vec::new();
    let mut cdf_by_class = Vec::new();
    for class in OpClass::ALL {
        if let Some(rec) = metrics.latency.get_mut(&class) {
            latency_by_class.push((
                class.to_string(),
                rec.mean().as_millis_f64(),
                rec.percentile(0.5).as_millis_f64(),
                rec.percentile(0.99).as_millis_f64(),
            ));
            cdf_by_class.push((
                class.to_string(),
                rec.cdf(20).into_iter().map(|(d, f)| (d.as_millis_f64(), f)).collect(),
            ));
        }
    }
    let cost_total = cost_cumulative.last().copied().unwrap_or(0.0);
    let per_sec_cost: Vec<f64> = cost_cumulative
        .iter()
        .scan(0.0, |prev, c| {
            let delta = c - *prev;
            *prev = *c;
            Some(delta)
        })
        .collect();
    let perf_per_cost_per_sec = throughput
        .iter()
        .zip(per_sec_cost.iter())
        .map(|(tp, c)| if *c > 1e-12 { tp / c } else { 0.0 })
        .collect();
    IndustrialReport {
        system: label.to_string(),
        offered_per_sec: offered,
        throughput_per_sec: throughput,
        avg_throughput,
        peak_sustained,
        avg_latency_ms,
        latency_by_class,
        cdf_by_class,
        generated,
        completed: metrics.completed,
        timeouts: metrics.timeouts,
        namenodes_per_sec: nn_series,
        cost_cumulative,
        cost_simplified_cumulative: cost_simplified,
        cost_total,
        perf_per_cost_per_sec,
        vcpus,
        retries: metrics.retries,
        straggler_resubmits: metrics.straggler_resubmits,
        anti_thrash_entries: metrics.anti_thrash_entries,
        http_rpcs: metrics.http_rpcs,
        tcp_rpcs: metrics.tcp_rpcs,
    }
}

/// Samples a λFS system's NameNode count every second into a shared
/// vector.
fn sample_namenodes(sim: &mut Sim, fs: &Rc<LambdaFs>, until: SimTime) -> Rc<std::cell::RefCell<Vec<f64>>> {
    let series = Rc::new(std::cell::RefCell::new(Vec::new()));
    let out = Rc::clone(&series);
    let fs = Rc::clone(fs);
    every(sim, sim.now(), SimDuration::from_secs(1), move |sim| {
        out.borrow_mut().push(fs.active_namenodes() as f64);
        sim.now() < until
    });
    series
}

/// The λFS configuration the industrial figures run (public so the
/// memory-footprint bench can measure the *same* system the performance
/// figures use, rather than a bespoke lookalike).
#[must_use]
pub fn lambda_config(p: &IndustrialParams, reduced_cache: bool) -> LambdaFsConfig {
    let spotify = p.spotify_config();
    // Working-set size *per NameNode*: each deployment caches ~1/n of the
    // tree; "reduced" caps each NameNode cache well below its partition's
    // share (§5.2.3: "less than half the working set size").
    let wss = spotify.dirs * (spotify.files_per_dir + 1);
    let per_nn_wss = wss / 10;
    LambdaFsConfig {
        deployments: 10,
        nn_vcpus: 5,
        nn_mem_gb: 6.0,
        cluster_vcpus: p.vcpus(),
        clients: p.clients(),
        client_vms: 8,
        cache_capacity: if reduced_cache { (per_nn_wss / 3).max(64) } else { 2_000_000 },
        store: p.store(),
        ..Default::default()
    }
}

/// Runs the industrial workload on one system, returning the report.
#[must_use]
pub fn run_industrial(kind: SystemKind, params: &IndustrialParams) -> IndustrialReport {
    let mut sim = Sim::new(params.seed);
    let spotify = params.spotify_config();
    let run_secs =
        spotify.duration.as_secs_f64() as usize + spotify.drain_grace.as_secs_f64() as usize;
    match kind {
        SystemKind::Lambda | SystemKind::LambdaReducedCache => {
            let fs = Rc::new(LambdaFs::build(
                &mut sim,
                lambda_config(params, kind == SystemKind::LambdaReducedCache),
            ));
            fs.start(&mut sim);
            // Pre-load the tree and warm every deployment from every VM:
            // the paper's runs start against a warm, connected system.
            let dirs = fs.bootstrap_tree(
                &lambda_namespace::DfsPath::root(),
                spotify.dirs,
                spotify.files_per_dir,
            );
            fs.prewarm_with(&mut sim, &dirs);
            sim.run_for(SimDuration::from_secs(8));
            let sample_until = sim.now() + SimDuration::from_secs(run_secs as u64);
            let nn = sample_namenodes(&mut sim, &fs, sample_until);
            if let Some(kill_every) = params.kill_every {
                let fs2 = Rc::clone(&fs);
                let stop = sim.now() + spotify.duration;
                let first_kill = sim.now() + kill_every;
                let victim_dep = std::cell::Cell::new(0u32);
                every(&mut sim, first_kill, kill_every, move |sim| {
                    if sim.now() >= stop {
                        return false;
                    }
                    let d = victim_dep.get();
                    victim_dep.set((d + 1) % fs2.config().deployments);
                    fs2.kill_one_namenode(sim, d);
                    true
                });
            }
            let workload_secs = spotify.duration.as_secs_f64();
            let run = run_spotify(&mut sim, Rc::clone(&fs), spotify);
            fs.stop(&mut sim);
            let nn_series = nn.borrow().clone();
            collect_report(
                fs.as_ref(),
                kind.label(),
                run.offered.buckets(),
                run.generated,
                nn_series,
                fs.pay_meter().cumulative_per_second(),
                fs.simplified_meter().cumulative_per_second(),
                params.vcpus(),
                workload_secs,
            )
        }
        SystemKind::InfiniCache => {
            let base = lambda_config(params, false);
            let fs = Rc::new(InfiniCacheStyle::build(&mut sim, base));
            fs.start(&mut sim);
            let workload_secs = spotify.duration.as_secs_f64();
            let run = run_spotify(&mut sim, Rc::clone(&fs), spotify);
            fs.stop(&mut sim);
            let pay = fs.system().pay_meter().cumulative_per_second();
            collect_report(
                fs.as_ref(),
                kind.label(),
                run.offered.buckets(),
                run.generated,
                Vec::new(),
                pay,
                Vec::new(),
                params.vcpus(),
                workload_secs,
            )
        }
        SystemKind::Hops | SystemKind::HopsCache | SystemKind::HopsCacheCostNormalized => {
            let vcpus = params.vcpus();
            let mut cfg = match kind {
                SystemKind::Hops => HopsFsConfig::vanilla(vcpus, params.clients()),
                _ => HopsFsConfig::with_cache(vcpus, params.clients()),
            };
            cfg.store = params.store();
            let fs = Rc::new(HopsFs::build(&mut sim, cfg));
            fs.start(&mut sim);
            let workload_secs = spotify.duration.as_secs_f64();
            let run = run_spotify(&mut sim, Rc::clone(&fs), spotify);
            fs.stop(&mut sim);
            let cost = fs.cost_meter().cumulative_per_second();
            collect_report(
                fs.as_ref(),
                kind.label(),
                run.offered.buckets(),
                run.generated,
                Vec::new(),
                cost,
                Vec::new(),
                fs.vcpus_total(),
                workload_secs,
            )
        }
        SystemKind::Ceph => {
            let fs = Rc::new(CephFs::build(
                &mut sim,
                CephFsConfig::sized(params.vcpus(), params.clients()),
            ));
            fs.start(&mut sim);
            let workload_secs = spotify.duration.as_secs_f64();
            let run = run_spotify(&mut sim, Rc::clone(&fs), spotify);
            fs.stop(&mut sim);
            let cost = fs.cost_meter().cumulative_per_second();
            collect_report(
                fs.as_ref(),
                kind.label(),
                run.offered.buckets(),
                run.generated,
                Vec::new(),
                cost,
                Vec::new(),
                params.vcpus(),
                workload_secs,
            )
        }
    }
}

/// The §5.2.2 cost-normalized vCPU budget: 72 vCPUs for the 25 k workload
/// and 144 for the 50 k workload (full scale).
#[must_use]
pub fn cost_normalized_vcpus(base_throughput: f64) -> u32 {
    if base_throughput >= 40_000.0 {
        144
    } else {
        72
    }
}
