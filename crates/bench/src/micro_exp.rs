//! Micro-benchmark sweep runner behind Figures 11, 12, 13, and 14.

use std::rc::Rc;

use lambda_baselines::{CephFs, CephFsConfig, HopsFs, HopsFsConfig, InfiniCacheStyle};
use lambda_fs::{LambdaFs, LambdaFsConfig};
use lambda_namespace::OpClass;
use lambda_sim::params::StoreParams;
use lambda_sim::{Sim, SimDuration, VmPricing};
use lambda_workload::{run_micro, MicroConfig};

use crate::industrial::SystemKind;

/// One point in a scaling sweep.
#[derive(Debug, Clone)]
pub struct MicroPoint {
    /// System label.
    pub system: String,
    /// The operation under test.
    pub op: OpClass,
    /// Number of clients.
    pub clients: u32,
    /// vCPU budget.
    pub vcpus: u32,
    /// Achieved throughput, ops/sec.
    pub throughput: f64,
    /// Run duration, seconds.
    pub makespan_secs: f64,
    /// Dollars spent over the run (pay-per-use for FaaS, VM for
    /// serverful).
    pub cost: f64,
    /// `throughput / (cost per second)` — the Fig. 13 metric.
    pub perf_per_cost: f64,
    /// Peak NameNodes provisioned (λFS family; 0 otherwise).
    pub peak_namenodes: f64,
}

/// Sweep-point parameters.
#[derive(Debug, Clone, Copy)]
pub struct MicroParams {
    /// λFS deployments (`n`); default 10. Fig. 14 shrinks this with the
    /// scale factor so the gap between the deployment floor and the vCPU
    /// budget — the head-room auto-scaling exploits — is preserved.
    pub deployments: u32,
    /// The operation under test.
    pub op: OpClass,
    /// Client count.
    pub clients: u32,
    /// Total vCPU budget.
    pub vcpus: u32,
    /// Operations per client (3 072 at full scale).
    pub ops_per_client: usize,
    /// Store slow-down factor (shrinks the experiment; 1.0 = paper).
    pub store_slowdown: f64,
    /// RNG seed.
    pub seed: u64,
    /// Cap instances per deployment (Fig. 14: `Some(1)` disables
    /// auto-scaling, `Some(2)` limits it).
    pub autoscale_limit: Option<u32>,
    /// Per-instance HTTP `ConcurrencyLevel` — the paper's coarse-grained
    /// scaling knob (§3.4, Fig. 6): lower values scale out more
    /// aggressively. Figs. 11-13 run the default (4); Fig. 14 runs the
    /// agile setting (1).
    pub concurrency_level: u32,
}

fn micro_config(p: &MicroParams) -> MicroConfig {
    MicroConfig {
        op: p.op,
        ops_per_client: p.ops_per_client,
        dirs: 128,
        files_per_dir: 32,
        deadline: SimDuration::from_secs(3600),
        gen_seed: p.seed ^ 0x5EED,
        warmup_ops_per_client: (p.ops_per_client / 2).max(128),
    }
}

/// Runs one sweep point.
#[must_use]
pub fn run_micro_point(kind: SystemKind, p: &MicroParams) -> MicroPoint {
    let mut sim = Sim::new(p.seed);
    let store = StoreParams::default().slowed(p.store_slowdown);
    let (throughput, makespan, cost, peak_nn, label) = match kind {
        SystemKind::Lambda | SystemKind::LambdaReducedCache => {
            let fs = Rc::new(LambdaFs::build(
                &mut sim,
                LambdaFsConfig {
                    deployments: p.deployments.max(1),
                    nn_vcpus: 5,
                    cluster_vcpus: p.vcpus,
                    clients: p.clients,
                    client_vms: 8,
                    max_instances_per_deployment: p.autoscale_limit.unwrap_or(u32::MAX),
                    concurrency_level: p.concurrency_level.max(1),
                    store,
                    ..Default::default()
                },
            ));
            fs.start(&mut sim);
            // Pre-build the micro tree (run_micro's bootstrap is
            // idempotent, multi-rooted) and warm every deployment from
            // every VM.
            let cfg = micro_config(p);
            let mut dirs = Vec::new();
            for r in 0..8usize {
                let root: lambda_namespace::DfsPath =
                    format!("/bench{r}").parse().expect("valid");
                let share = cfg.dirs / 8 + usize::from(r < cfg.dirs % 8);
                dirs.extend(lambda_fs::DfsService::bootstrap_tree(
                    fs.as_ref(),
                    &root,
                    share,
                    cfg.files_per_dir,
                ));
            }
            fs.prewarm_with(&mut sim, &dirs);
            sim.run_for(SimDuration::from_secs(8));
            let run = run_micro(&mut sim, Rc::clone(&fs), cfg);
            fs.stop(&mut sim);
            (
                run.throughput,
                run.makespan.as_secs_f64(),
                fs.pay_meter().total(),
                fs.namenode_gauge().peak(),
                kind.label(),
            )
        }
        SystemKind::InfiniCache => {
            let base = LambdaFsConfig {
                deployments: 10,
                nn_vcpus: 5,
                cluster_vcpus: p.vcpus,
                clients: p.clients,
                client_vms: 8,
                store,
                ..Default::default()
            };
            let fs = Rc::new(InfiniCacheStyle::build(&mut sim, base));
            fs.start(&mut sim);
            let run = run_micro(&mut sim, Rc::clone(&fs), micro_config(p));
            fs.stop(&mut sim);
            (
                run.throughput,
                run.makespan.as_secs_f64(),
                fs.system().pay_meter().total(),
                0.0,
                kind.label(),
            )
        }
        SystemKind::Hops | SystemKind::HopsCache | SystemKind::HopsCacheCostNormalized => {
            let mut cfg = match kind {
                SystemKind::Hops => HopsFsConfig::vanilla(p.vcpus, p.clients),
                _ => HopsFsConfig::with_cache(p.vcpus, p.clients),
            };
            cfg.store = store;
            let fs = Rc::new(HopsFs::build(&mut sim, cfg));
            fs.start(&mut sim);
            let run = run_micro(&mut sim, Rc::clone(&fs), micro_config(p));
            fs.stop(&mut sim);
            // Serverful cost: the paper's HopsFS deployments are statically
            // provisioned, so the whole *rented* vCPU budget is billed for
            // the whole makespan regardless of how many NameNodes the
            // system chose to run on it.
            let cost = VmPricing::default().cost(f64::from(p.vcpus), run.makespan);
            (run.throughput, run.makespan.as_secs_f64(), cost, 0.0, kind.label())
        }
        SystemKind::Ceph => {
            let fs = Rc::new(CephFs::build(&mut sim, CephFsConfig::sized(p.vcpus, p.clients)));
            fs.start(&mut sim);
            let run = run_micro(&mut sim, Rc::clone(&fs), micro_config(p));
            fs.stop(&mut sim);
            let cost = VmPricing::default().cost(f64::from(p.vcpus), run.makespan);
            (run.throughput, run.makespan.as_secs_f64(), cost, 0.0, kind.label())
        }
    };
    let perf_per_cost = if cost > 1e-12 && makespan > 0.0 {
        throughput / (cost / makespan)
    } else {
        0.0
    };
    MicroPoint {
        system: label.to_string(),
        op: p.op,
        clients: p.clients,
        vcpus: p.vcpus,
        throughput,
        makespan_secs: makespan,
        cost,
        perf_per_cost,
        peak_namenodes: peak_nn,
    }
}

/// The five operations of Figs. 11/12/14.
pub const MICRO_OPS: [OpClass; 5] =
    [OpClass::Read, OpClass::Ls, OpClass::Stat, OpClass::Create, OpClass::Mkdir];
