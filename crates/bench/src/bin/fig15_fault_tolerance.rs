//! Fig. 15: fault tolerance under the 25k industrial workload — one active
//! NameNode killed every 30 seconds, round-robin across deployments.

use lambda_bench::*;
use lambda_sim::SimDuration;

fn main() {
    let scale = scale_from_args();
    let seed = arg_u64("seed", 52);
    let jobs: Vec<Box<dyn FnOnce() -> IndustrialReport + Send>> = vec![
        Box::new(move || {
            run_industrial(SystemKind::Lambda, &IndustrialParams::spotify(25_000.0, scale, seed))
        }),
        Box::new(move || {
            let mut p = IndustrialParams::spotify(25_000.0, scale, seed);
            p.kill_every = Some(SimDuration::from_secs(30));
            run_industrial(SystemKind::Lambda, &p)
        }),
    ];
    let reports = run_parallel_ops(jobs, |r| r.completed);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .zip(["lambda-fs", "lambda-fs + failures"])
        .map(|(r, label)| {
            vec![
                label.to_string(),
                fmt_ops(r.avg_throughput * scale),
                fmt_ops(r.peak_sustained * scale),
                fmt_ms(r.avg_latency_ms),
                format!("{}/{}", r.completed, r.generated),
                r.timeouts.to_string(),
                r.retries.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 15 summary (scale 1/{scale}; kill 1 NN / 30s round-robin)"),
        &["run", "avg tp", "peak 15s", "avg latency", "done/gen", "timeouts", "retries"],
        &rows,
    );
    print_series(
        "Fig. 15: ops/sec over time",
        &["offered", "no failures", "with failures"],
        &[
            reports[0].offered_per_sec.clone(),
            reports[0].throughput_per_sec.clone(),
            reports[1].throughput_per_sec.clone(),
        ],
        10,
    );
    print_series(
        "Fig. 15: active NameNodes",
        &["no failures", "with failures"],
        &[reports[0].namenodes_per_sec.clone(), reports[1].namenodes_per_sec.clone()],
        10,
    );
    println!("\npaper: despite a kill every 30s, λFS completed the workload as generated,");
    println!("       including the 163,996 ops/s burst, with brief dips after each kill.");
}
