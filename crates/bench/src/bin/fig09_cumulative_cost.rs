//! Fig. 9: cumulative monetary cost of the 25k industrial workload — λFS
//! pay-per-use, λFS under the simplified (billed-while-provisioned) model,
//! HopsFS, and HopsFS+Cache.

use lambda_bench::*;

fn main() {
    let scale = scale_from_args();
    let seed = arg_u64("seed", 45);
    let jobs: Vec<Box<dyn FnOnce() -> IndustrialReport + Send>> = vec![
        Box::new(move || run_industrial(SystemKind::Lambda, &IndustrialParams::spotify(25_000.0, scale, seed))),
        Box::new(move || run_industrial(SystemKind::Hops, &IndustrialParams::spotify(25_000.0, scale, seed))),
        Box::new(move || run_industrial(SystemKind::HopsCache, &IndustrialParams::spotify(25_000.0, scale, seed))),
    ];
    let reports = run_parallel_ops(jobs, |r| r.completed);
    let lambda = &reports[0];
    let rows = vec![
        vec!["lambda-fs (pay-per-use)".to_string(), format!("${:.4}", lambda.cost_total)],
        vec![
            "lambda-fs (simplified)".to_string(),
            format!("${:.4}", lambda.cost_simplified_cumulative.last().copied().unwrap_or(0.0)),
        ],
        vec![reports[1].system.clone(), format!("${:.4}", reports[1].cost_total)],
        vec![reports[2].system.clone(), format!("${:.4}", reports[2].cost_total)],
    ];
    print_table(&format!("Fig. 9 totals (scale 1/{scale}; costs scale ~1/{scale})"), &["system", "total"], &rows);
    let series = [lambda.cost_cumulative.clone(),
        lambda.cost_simplified_cumulative.clone(),
        reports[1].cost_cumulative.clone(),
        reports[2].cost_cumulative.clone()];
    let labels = ["λ pay-per-use", "λ simplified", "hopsfs", "hopsfs+cache"];
    // Costs are small; print cents.
    let cents: Vec<Vec<f64>> =
        series.iter().map(|s| s.iter().map(|v| v * 100.0).collect()).collect();
    print_series("Fig. 9: cumulative cost over time (CENTS)", &labels, &cents, 10);
    let ratio = reports[1].cost_total / lambda.cost_total.max(1e-12);
    println!("\nmeasured: HopsFS / λFS cost ratio = {ratio:.2}x");
    println!("paper: $2.50 vs $0.35 => 7.14x (85.99% cheaper); simplified model ~2x pay-per-use.");
}
