//! FaaS control-plane hot-path benchmark: the slab/ready-heap platform
//! versus the preserved pre-overhaul implementation
//! ([`lambda_faas::baseline`]).
//!
//! Three scenarios, one per overhauled mechanism:
//!
//! * `http_invoke` — gateway bursts against a large warm pool: per-request
//!   routing through the lazy ready heap (O(log n) maintenance, O(1)
//!   pick) versus the baseline's full scan of the deployment's instances
//!   for the least-loaded one, plus slab slot lookups versus `BTreeMap`
//!   on every dispatch and completion;
//! * `tcp_dispatch` — direct warm deliveries: the pooled
//!   invocation-record path (dispatch/completion without allocating)
//!   versus the baseline's boxed wrapper closure per request;
//! * `churn_billing` — scale-out bursts, idle-out reclamation cycles, and
//!   per-second billing with maintenance running: intrusive idle lists
//!   and `live_ids` walks versus whole-table scans each tick.
//!
//! Both sides run the same seeded schedule and must agree on the platform
//! counters and completion totals before any rate is reported — the
//! differential proptest's invariant, re-checked here at bench scale.
//! The composite (geometric-mean) speedup is checked against the ≥1.5×
//! target. Results go to `results/BENCH_faas.json`.
//!
//! Flags: `--smoke` (small op counts, for CI), `--seed=N`.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use lambda_bench::{arg_flag, arg_u64, fmt_events_per_sec, print_table, write_json};
use lambda_faas::{
    Function, FunctionConfig, InstanceCtx, PlatformConfig, PlatformStats, Responder,
};
use lambda_sim::params::FaasParams;
use lambda_sim::{Dist, Sim, SimDuration, Station};

/// One side's measurement of one scenario.
struct Measurement {
    events: u64,
    wall_s: f64,
}

impl Measurement {
    fn rate(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-12)
    }
}

/// Best-of-`reps` wall clock for `run`, which returns executed ops.
fn measure(reps: u32, mut run: impl FnMut() -> u64) -> Measurement {
    let mut best = Measurement { events: 0, wall_s: f64::INFINITY };
    for _ in 0..reps {
        let started = Instant::now();
        let events = run();
        let wall_s = started.elapsed().as_secs_f64();
        if wall_s < best.wall_s {
            best = Measurement { events, wall_s };
        }
    }
    best
}

/// A minimal CPU-bound function: just enough station work to exercise the
/// request lifecycle without letting kernel time (identical on both
/// sides) swamp the platform overhead under measurement.
struct Worker;

impl Function for Worker {
    type Req = u64;
    type Resp = u64;

    fn on_start(&mut self, _sim: &mut Sim, _ctx: &InstanceCtx) {}

    fn on_request(&mut self, sim: &mut Sim, ctx: &InstanceCtx, req: u64, respond: Responder<u64>) {
        let work = SimDuration::from_micros(50);
        Station::submit(&ctx.cpu, sim, work, move |sim| respond.send(sim, req));
    }

    fn on_terminate(&mut self, _sim: &mut Sim, _ctx: &InstanceCtx, _graceful: bool) {}
}

/// Platform sized so `pool` single-vCPU instances fit with headroom.
fn bench_config(pool: u32, idle_after: SimDuration) -> PlatformConfig {
    PlatformConfig {
        cluster_vcpus: pool * 2,
        faas: FaasParams {
            cold_start: Dist::uniform(0.05, 0.15),
            idle_reclaim_after: idle_after,
            reclaim_scan_every: SimDuration::from_millis(500),
        },
        ..PlatformConfig::default()
    }
}

fn worker_config(concurrency: u32) -> FunctionConfig {
    FunctionConfig {
        vcpus: 1,
        mem_gb: 1.0,
        concurrency,
        max_instances: u32::MAX,
        min_instances: 0,
    }
}

/// What a scenario run must agree on across implementations.
#[derive(Debug, PartialEq)]
struct Agreement {
    completions: u64,
    stats: PlatformStats,
    instances: usize,
}

/// Warm a `pool`-instance deployment, then drive `rounds` gateway bursts
/// of `burst` invocations each. Routing cost dominates: every invocation
/// must pick the least-loaded warm instance out of `pool`.
macro_rules! http_scenario {
    ($platform_ty:ty, $seed:expr, $pool:expr, $conc:expr, $rounds:expr, $burst:expr) => {{
        let mut sim = Sim::new($seed);
        let platform = <$platform_ty>::new(&bench_config($pool, SimDuration::from_secs(600)));
        let dep = platform.register_deployment(
            "storm",
            worker_config($conc),
            Box::new(|_ctx| Worker),
        );
        // Saturating burst: all instances cold-start, then drain.
        let done: Rc<Cell<u64>> = Rc::new(Cell::new(0));
        for req in 0..u64::from($pool) * u64::from($conc) {
            let done = Rc::clone(&done);
            platform.invoke_http(
                &mut sim,
                dep,
                req,
                Responder::new(move |_sim, _resp| done.set(done.get() + 1)),
            );
        }
        sim.run();
        let warmed = platform.warm_instances(dep).len();
        // Measured phase: repeated bursts against the warm pool.
        done.set(0);
        let mut ops = 0u64;
        for round in 0..$rounds {
            for i in 0..$burst {
                let done = Rc::clone(&done);
                platform.invoke_http(
                    &mut sim,
                    dep,
                    u64::from(round) * u64::from($burst) + u64::from(i),
                    Responder::new(move |_sim, _resp| done.set(done.get() + 1)),
                );
                ops += 1;
            }
            sim.run();
        }
        assert_eq!(warmed as u32, $pool, "pool fully warmed");
        let agreement = Agreement {
            completions: done.get(),
            stats: platform.stats(),
            instances: platform.total_instances(),
        };
        (ops, agreement)
    }};
}

/// Direct TCP deliveries round-robined over a warm pool: the pure
/// dispatch/complete cycle, no gateway or routing.
macro_rules! tcp_scenario {
    ($platform_ty:ty, $seed:expr, $pool:expr, $rounds:expr) => {{
        let mut sim = Sim::new($seed);
        let platform = <$platform_ty>::new(&bench_config($pool, SimDuration::from_secs(600)));
        let dep = platform.register_deployment(
            "direct",
            worker_config(4),
            Box::new(|_ctx| Worker),
        );
        let done: Rc<Cell<u64>> = Rc::new(Cell::new(0));
        for req in 0..u64::from($pool) * 4 {
            let done = Rc::clone(&done);
            platform.invoke_http(
                &mut sim,
                dep,
                req,
                Responder::new(move |_sim, _resp| done.set(done.get() + 1)),
            );
        }
        sim.run();
        let pool = platform.warm_instances(dep);
        assert_eq!(pool.len() as u32, $pool, "pool fully warmed");
        done.set(0);
        let mut ops = 0u64;
        for round in 0..$rounds {
            for (i, instance) in pool.iter().enumerate() {
                let done = Rc::clone(&done);
                let delivered = platform.deliver_tcp(
                    &mut sim,
                    *instance,
                    u64::from(round) * pool.len() as u64 + i as u64,
                    Responder::new(move |_sim, _resp| done.set(done.get() + 1)),
                );
                assert!(delivered, "warm instance accepts TCP");
                ops += 1;
            }
            sim.run();
        }
        let agreement = Agreement {
            completions: done.get(),
            stats: platform.stats(),
            instances: platform.total_instances(),
        };
        (ops, agreement)
    }};
}

/// Scale-out / idle-out cycles with maintenance running: each cycle
/// bursts the deployment up to `pool` instances, then sits idle long
/// enough for the reclamation scans (every 500 ms, walking the idle
/// structures) and billing ticks (every second, walking every live
/// instance) to cull the pool back down.
macro_rules! churn_scenario {
    ($platform_ty:ty, $seed:expr, $pool:expr, $cycles:expr) => {{
        let mut sim = Sim::new($seed);
        let platform = <$platform_ty>::new(&bench_config($pool, SimDuration::from_secs(2)));
        let dep = platform.register_deployment(
            "churn",
            worker_config(1),
            Box::new(|_ctx| Worker),
        );
        platform.run_maintenance(&mut sim);
        let done: Rc<Cell<u64>> = Rc::new(Cell::new(0));
        let mut ops = 0u64;
        for cycle in 0..$cycles {
            for i in 0..$pool {
                let done = Rc::clone(&done);
                platform.invoke_http(
                    &mut sim,
                    dep,
                    u64::from(cycle) * u64::from($pool) + u64::from(i),
                    Responder::new(move |_sim, _resp| done.set(done.get() + 1)),
                );
                ops += 1;
            }
            // Long enough for every instance to idle out and be reclaimed.
            let deadline = sim.now() + SimDuration::from_secs(4);
            sim.run_until(deadline);
        }
        platform.stop_maintenance();
        let agreement = Agreement {
            completions: done.get(),
            stats: platform.stats(),
            instances: platform.total_instances(),
        };
        (ops, agreement)
    }};
}

fn main() {
    let smoke = arg_flag("smoke");
    let reps = if smoke { 2 } else { 3 };
    let seed = arg_u64("seed", 42);
    // (pool, rounds, burst) per scenario; full sizes put hundreds of
    // instances in the table so routing/scan costs are realistic for a
    // fig10-scale steady state.
    let (http_pool, http_rounds, http_burst): (u32, u32, u32) =
        if smoke { (16, 4, 64) } else { (192, 40, 768) };
    let (tcp_pool, tcp_rounds): (u32, u32) = if smoke { (16, 8) } else { (192, 60) };
    let (churn_pool, churn_cycles): (u32, u32) = if smoke { (16, 3) } else { (96, 20) };

    let mut agreement_lines: Vec<String> = Vec::new();
    let mut check = |name: &str, new: &Agreement, base: &Agreement| {
        agreement_lines.push(format!(
            "{name}: platforms agree on {} completions / {:?}: {}",
            new.completions,
            new.stats,
            new == base
        ));
        assert_eq!(new, base, "{name}: platform implementations diverged");
    };

    let scenarios: Vec<(&str, Measurement, Measurement)> = vec![
        {
            let mut new_agree = None;
            let new = measure(reps, || {
                let (ops, agree) = http_scenario!(
                    lambda_faas::Platform<Worker>,
                    seed,
                    http_pool,
                    4u32,
                    http_rounds,
                    http_burst
                );
                new_agree = Some(agree);
                ops
            });
            let mut base_agree = None;
            let base = measure(reps, || {
                let (ops, agree) = http_scenario!(
                    lambda_faas::baseline::Platform<Worker>,
                    seed,
                    http_pool,
                    4u32,
                    http_rounds,
                    http_burst
                );
                base_agree = Some(agree);
                ops
            });
            check("http_invoke", new_agree.as_ref().unwrap(), base_agree.as_ref().unwrap());
            ("http_invoke", new, base)
        },
        {
            let mut new_agree = None;
            let new = measure(reps, || {
                let (ops, agree) =
                    tcp_scenario!(lambda_faas::Platform<Worker>, seed, tcp_pool, tcp_rounds);
                new_agree = Some(agree);
                ops
            });
            let mut base_agree = None;
            let base = measure(reps, || {
                let (ops, agree) = tcp_scenario!(
                    lambda_faas::baseline::Platform<Worker>,
                    seed,
                    tcp_pool,
                    tcp_rounds
                );
                base_agree = Some(agree);
                ops
            });
            check("tcp_dispatch", new_agree.as_ref().unwrap(), base_agree.as_ref().unwrap());
            ("tcp_dispatch", new, base)
        },
        {
            let mut new_agree = None;
            let new = measure(reps, || {
                let (ops, agree) =
                    churn_scenario!(lambda_faas::Platform<Worker>, seed, churn_pool, churn_cycles);
                new_agree = Some(agree);
                ops
            });
            let mut base_agree = None;
            let base = measure(reps, || {
                let (ops, agree) = churn_scenario!(
                    lambda_faas::baseline::Platform<Worker>,
                    seed,
                    churn_pool,
                    churn_cycles
                );
                base_agree = Some(agree);
                ops
            });
            check("churn_billing", new_agree.as_ref().unwrap(), base_agree.as_ref().unwrap());
            ("churn_billing", new, base)
        },
    ];

    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|(name, new, base)| {
            vec![
                (*name).to_string(),
                new.events.to_string(),
                fmt_events_per_sec(new.events, new.wall_s),
                fmt_events_per_sec(base.events, base.wall_s),
                format!("{:.2}x", new.rate() / base.rate()),
            ]
        })
        .collect();
    print_table(
        "FaaS control-plane hot path (overhauled vs baseline)",
        &["scenario", "ops", "new", "baseline", "speedup"],
        &rows,
    );
    for line in &agreement_lines {
        println!("{line}");
    }

    // Composite: geometric mean, so no single scenario's op-count choice
    // dominates the acceptance number.
    let product: f64 = scenarios.iter().map(|(_, new, base)| new.rate() / base.rate()).product();
    let composite = product.powf(1.0 / scenarios.len() as f64);
    let meets = composite >= 1.5;
    let status = if meets {
        "ok"
    } else if smoke {
        "below target at smoke scale (expected; the full run is authoritative)"
    } else {
        "BELOW TARGET"
    };
    println!("composite speedup (geomean): {composite:.2}x (target 1.50x) -- {status}");

    let scenario_json: Vec<String> = scenarios
        .iter()
        .map(|(name, new, base)| {
            format!(
                concat!(
                    "    {{\"scenario\": \"{}\", \"events\": {}, ",
                    "\"new_events_per_sec\": {:.0}, \"baseline_events_per_sec\": {:.0}, ",
                    "\"speedup\": {:.3}}}"
                ),
                name,
                new.events,
                new.rate(),
                base.rate(),
                new.rate() / base.rate(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"faas\",\n  \"mode\": \"{mode}\",\n  \"scenarios\": [\n{scenarios}\n  ],\n  \
         \"composite_speedup\": {composite:.3},\n  \"target_speedup\": 1.5,\n  \
         \"meets_target\": {meets}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        scenarios = scenario_json.join(",\n"),
    );
    // Smoke runs are a CI liveness check, not a measurement; keep them
    // from clobbering the recorded full-size numbers.
    let path = write_json(if smoke { "BENCH_faas_smoke" } else { "BENCH_faas" }, &json);
    println!("wrote {}", path.display());
}
