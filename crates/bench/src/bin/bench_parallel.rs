//! Parallel-DES benchmark: runs the same sharded λFS cluster experiment
//! at N ∈ {1, 2, 4, 8} worker threads, asserts that every thread count
//! produces a bit-identical [`ClusterReport`] fingerprint, and records
//! wall-clock time and speedup vs N=1 in `results/BENCH_parallel.json`.
//!
//! The determinism check is the point: conservative-sync sharding is only
//! usable if `(seed, plan, N)` fully pins the result, so this binary
//! doubles as a CI gate (`--smoke`) and as the honest speedup record for
//! the host it ran on (`host_cores` is written alongside the numbers —
//! on a single-core host the speedup is expected to be ≈1× or below).
//! Points running more workers than the host has cores additionally carry
//! `"oversubscribed": true` in the JSON: their wall-clock measures the OS
//! scheduler, not the sharding, and must not be read as speedup data.
//!
//! `--smoke` shrinks the workload; `--seed=N` reseeds; `--domains=N`
//! changes the shard count (default 8).

use std::time::Instant;

use lambda_bench::*;
use lambda_fs::{run_sharded_cluster, ShardedClusterConfig};
use lambda_sim::SimDuration;

struct SweepPoint {
    threads: usize,
    wall_secs: f64,
    fingerprint: u64,
    completed: u64,
    issued: u64,
    remote: u64,
}

fn config(domains: usize, threads: usize, smoke: bool) -> ShardedClusterConfig {
    ShardedClusterConfig {
        domains,
        threads,
        dirs: if smoke { 12 } else { 24 },
        files_per_dir: 4,
        ops_per_domain: if smoke { 160 } else { 1600 },
        rate: 160.0,
        remote_fraction: 0.2,
        drain: SimDuration::from_secs(2),
        ..ShardedClusterConfig::default()
    }
}

fn main() {
    let seed = arg_u64("seed", 11);
    let smoke = arg_flag("smoke");
    let domains = arg_usize("domains", 8);
    let host_cores = host_cores();

    let mut points: Vec<SweepPoint> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let cfg = config(domains, threads, smoke);
        let started = Instant::now();
        let report = run_sharded_cluster(&cfg, seed);
        let wall_secs = started.elapsed().as_secs_f64();
        assert!(report.is_clean(), "N={threads}: audit violations");
        assert_eq!(
            report.remote_answered(),
            report.remote_issued(),
            "N={threads}: remote requests leaked"
        );
        points.push(SweepPoint {
            threads,
            wall_secs,
            fingerprint: report.fingerprint(),
            completed: report.merged.completed,
            issued: report.merged.issued,
            remote: report.remote_issued(),
        });
    }

    let baseline = &points[0];
    for p in &points[1..] {
        assert_eq!(
            p.fingerprint, baseline.fingerprint,
            "N={} produced a different trace than N=1 — determinism broken",
            p.threads
        );
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let speedup = baseline.wall_secs / p.wall_secs.max(1e-9);
            vec![
                p.threads.to_string(),
                format!("{:.3}s", p.wall_secs),
                format!("{speedup:.2}x"),
                format!("{:016x}", p.fingerprint),
                format!("{}/{}", p.completed, p.issued),
                p.remote.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Parallel DES sweep: {domains} domains, seed {seed}, host_cores={host_cores}{}",
            if smoke { ", smoke" } else { "" }
        ),
        &["threads", "wall", "speedup", "fingerprint", "done/gen", "remote"],
        &rows,
    );
    println!(
        "\nall {} thread counts produced the identical fingerprint {:016x}",
        points.len(),
        baseline.fingerprint
    );
    if host_cores == 1 {
        println!("(single-core host: speedup ≈1x is expected; the sweep checks determinism)");
    }

    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"wall_secs\": {:.4}, \"speedup_vs_1\": {:.3}, \
                 \"fingerprint\": \"{:016x}\", \"completed\": {}, \"issued\": {}, \
                 \"remote_requests\": {}, \"oversubscribed\": {}}}",
                p.threads,
                p.wall_secs,
                baseline.wall_secs / p.wall_secs.max(1e-9),
                p.fingerprint,
                p.completed,
                p.issued,
                p.remote,
                // Honest reporting: with more workers than cores the
                // wall-clock is a scheduling artifact, not a speedup
                // measurement — flag those points so downstream readers
                // (and the README table) can discount them.
                p.threads > host_cores,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"parallel_sharded_des\",\n  \"seed\": {seed},\n  \
         \"domains\": {domains},\n  \"smoke\": {smoke},\n  \"host_cores\": {host_cores},\n  \
         \"deterministic_across_threads\": true,\n  \"points\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let name = if smoke { "BENCH_parallel_smoke" } else { "BENCH_parallel" };
    let path = write_json(name, &json);
    println!("wrote {}", path.display());
}
