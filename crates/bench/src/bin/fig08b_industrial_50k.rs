//! Fig. 8(b): the industrial workload at a 50,000 ops/sec base.

use lambda_bench::*;

fn main() {
    let scale = scale_from_args();
    let seed = arg_u64("seed", 43);
    let kinds = vec![
        (SystemKind::Lambda, None),
        (SystemKind::Hops, None),
        (SystemKind::HopsCache, None),
        (SystemKind::HopsCacheCostNormalized, Some(cost_normalized_vcpus(50_000.0))),
    ];
    let jobs: Vec<_> = kinds
        .into_iter()
        .map(|(kind, vcpus)| {
            move || {
                let mut p = IndustrialParams::spotify(50_000.0, scale, seed);
                p.vcpus_override = vcpus;
                run_industrial(kind, &p)
            }
        })
        .collect();
    let reports = run_parallel_ops(jobs, |r| r.completed);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                fmt_ops(r.avg_throughput * scale),
                fmt_ops(r.peak_sustained * scale),
                fmt_ms(r.avg_latency_ms),
                format!("{}/{}", r.completed, r.generated),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 8(b) summary (scale 1/{scale}; throughput rescaled to full)"),
        &["system", "avg tp", "peak 15s tp", "avg latency", "done/gen"],
        &rows,
    );
    let labels: Vec<&str> = std::iter::once("offered")
        .chain(reports.iter().map(|r| r.system.as_str()))
        .collect();
    let mut series = vec![reports[0].offered_per_sec.clone()];
    series.extend(reports.iter().map(|r| r.throughput_per_sec.clone()));
    print_series("Fig. 8(b): ops/sec over time (scaled)", &labels, &series, 10);
    println!("\npaper: λFS avg 90,876 @4.31ms vs HopsFS 44,956 @22.40ms (2.02x tp, 5.19x latency);");
    println!("       λFS sustained ~250k ops/s at the burst (5.56x HopsFS peak).");
}
