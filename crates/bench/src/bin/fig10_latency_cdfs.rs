//! Fig. 10: end-to-end latency CDFs per operation class for λFS, HopsFS,
//! and HopsFS+Cache, for both industrial workload bases.

use lambda_bench::*;

fn main() {
    let scale = scale_from_args();
    let seed = arg_u64("seed", 46);
    for base in [25_000.0, 50_000.0] {
        let jobs: Vec<Box<dyn FnOnce() -> IndustrialReport + Send>> = vec![
            Box::new(move || run_industrial(SystemKind::Lambda, &IndustrialParams::spotify(base, scale, seed))),
            Box::new(move || run_industrial(SystemKind::Hops, &IndustrialParams::spotify(base, scale, seed))),
            Box::new(move || run_industrial(SystemKind::HopsCache, &IndustrialParams::spotify(base, scale, seed))),
        ];
        let reports = run_parallel_ops(jobs, |r| r.completed);
        for r in &reports {
            let rows: Vec<Vec<String>> = r
                .latency_by_class
                .iter()
                .map(|(class, mean, p50, p99)| {
                    vec![class.clone(), fmt_ms(*mean), fmt_ms(*p50), fmt_ms(*p99)]
                })
                .collect();
            print_table(
                &format!("Fig. 10 [{} @ base {}]", r.system, fmt_ops(base)),
                &["class", "mean", "p50", "p99"],
                &rows,
            );
            for (class, cdf) in &r.cdf_by_class {
                let points: Vec<String> = cdf
                    .iter()
                    .step_by(4)
                    .map(|(ms, f)| format!("{:.0}%≤{}", f * 100.0, fmt_ms(*ms)))
                    .collect();
                println!("  {class:<7} CDF: {}", points.join("  "));
            }
        }
    }
    println!("\npaper: λFS read latencies 6.93x-20.13x lower than HopsFS; HopsFS writes");
    println!("       1.5x-5.5x faster than λFS (coherence overhead); λFS ~3.3x lower than H+C.");
}
