//! DES-kernel throughput benchmark: the slab/enum event store
//! ([`lambda_sim::Sim`]) versus the preserved boxed-closure baseline
//! ([`lambda_sim::baseline::BoxedSim`]).
//!
//! Three scenarios exercise the kernel's event classes:
//!
//! * `timer_ticks` — periodic heartbeat-style events (the engine's
//!   allocation-free `Timer` fast path vs re-boxing every tick);
//! * `station_jobs` — closed-loop queueing-station completions (the
//!   `Station` fast path vs one boxed completion closure per job);
//! * `closure_chain` — one-shot closures scheduling one-shot closures
//!   (both engines box the closure; the slab engine still keeps heap
//!   entries small and recycles slots).
//!
//! Each scenario runs both engines over the same event count and reports
//! wall-clock events/sec; the hot-path speedup (timers + stations) is
//! checked against the ≥2× target. A scaled Fig. 8(a) industrial run is
//! timed end-to-end as the macro sanity check. Results go to
//! `results/BENCH_kernel.json`.
//!
//! Flags: `--smoke` (small event counts, for CI), `--scale=N` (industrial
//! run scale), `--seed=N`.

use lambda_bench::{arg_f64, arg_flag, arg_u64, fmt_events_per_sec, print_table, write_json};
use lambda_sim::baseline::{boxed_every, BoxedSim, BoxedStation};
use lambda_sim::{every, Sim, SimDuration, SimTime, Station};
use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

/// One engine's measurement of one scenario.
struct Measurement {
    events: u64,
    wall_s: f64,
}

impl Measurement {
    fn rate(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-12)
    }
}

/// Best-of-`reps` wall clock for `run`, which returns executed events.
fn measure(reps: u32, mut run: impl FnMut() -> u64) -> Measurement {
    let mut best = Measurement { events: 0, wall_s: f64::INFINITY };
    for _ in 0..reps {
        let started = Instant::now();
        let events = run();
        let wall_s = started.elapsed().as_secs_f64();
        if wall_s < best.wall_s {
            best = Measurement { events, wall_s };
        }
    }
    best
}

/// Per-actor bookkeeping captured by every periodic tick — ids, a counter,
/// and a small rolling window, the state real heartbeats and block reports
/// carry. The slab engine boxes it once at registration; the boxed baseline
/// re-boxes (allocate + copy + free) all of it on every single tick.
#[derive(Clone, Copy)]
struct HeartbeatCtx {
    client: u64,
    ticks_left: u64,
    acc: u64,
    window: [u64; 4],
}

macro_rules! timer_scenario {
    ($sim_ty:ty, $every:path, $n_timers:expr, $ticks_per_timer:expr) => {{
        let mut sim = <$sim_ty>::new(1);
        for i in 0..$n_timers {
            let mut ctx = HeartbeatCtx {
                client: i,
                ticks_left: $ticks_per_timer,
                acc: i,
                window: [0; 4],
            };
            $every(
                &mut sim,
                SimTime::from_nanos(i * 100),
                SimDuration::from_micros(i % 17 + 1),
                move |_: &mut $sim_ty| {
                    ctx.acc = ctx.acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(ctx.client);
                    ctx.window[(ctx.acc % 4) as usize] = ctx.acc;
                    ctx.ticks_left -= 1;
                    ctx.ticks_left > 0
                },
            );
        }
        sim.run();
        sim.events_executed()
    }};
}

/// Per-job context captured by every completion callback (op id, a result
/// word, the resubmit handles). Both engines box this once per job at
/// submit; the boxed baseline additionally boxes a completion closure per
/// job on the engine queue.
macro_rules! station_scenario {
    ($sim_ty:ty, $station_new:expr, $station_ty:ty, $n_stations:expr, $completions:expr) => {{
        let mut sim = <$sim_ty>::new(2);
        let remaining = Rc::new(Cell::new($completions));
        for s in 0..$n_stations {
            let station = $station_new;
            // Closed loop: 4 jobs in flight per station; every completion
            // resubmits until the global budget is spent.
            fn pump(
                station: &Rc<std::cell::RefCell<$station_ty>>,
                sim: &mut $sim_ty,
                remaining: &Rc<Cell<u64>>,
                service: SimDuration,
                op: [u64; 4],
            ) {
                if remaining.get() == 0 {
                    return;
                }
                remaining.set(remaining.get() - 1);
                let again = Rc::clone(station);
                let budget = Rc::clone(remaining);
                <$station_ty>::submit(station, sim, service, move |sim: &mut $sim_ty| {
                    let op = [op[0], op[1].wrapping_add(1), op[2] ^ op[1], op[3]];
                    pump(&again, sim, &budget, service, op);
                });
            }
            let service = SimDuration::from_micros(s % 13 + 1);
            for j in 0..4 {
                pump(&station, &mut sim, &remaining, service, [s, j, 0, s ^ j]);
            }
        }
        sim.run();
        sim.events_executed()
    }};
}

macro_rules! closure_scenario {
    ($sim_ty:ty, $n_chains:expr, $links_per_chain:expr) => {{
        let mut sim = <$sim_ty>::new(3);
        fn link(sim: &mut $sim_ty, ctx: [u64; 4]) {
            if ctx[0] > 0 {
                sim.schedule(SimDuration::from_micros(1), move |sim| {
                    link(sim, [ctx[0] - 1, ctx[1], ctx[2].wrapping_add(ctx[1]), ctx[3]]);
                });
            }
        }
        for c in 0..$n_chains {
            link(&mut sim, [$links_per_chain, c, 0, !c]);
        }
        sim.run();
        sim.events_executed()
    }};
}

fn main() {
    let smoke = arg_flag("smoke");
    let reps = if smoke { 2 } else { 3 };
    // Actor counts mirror a fig08a-scale run: thousands of concurrent
    // heartbeat timers and hundreds of queueing stations keep a realistic
    // pending set in the event queue. Event totals per scenario:
    let (timers, stations, chains): (u64, u64, u64) =
        if smoke { (512, 64, 128) } else { (4096, 256, 1024) };
    let events_total: u64 = if smoke { 131_072 } else { 2_097_152 };
    let seed = arg_u64("seed", 42);

    let scenarios: Vec<(&str, Measurement, Measurement)> = vec![
        (
            "timer_ticks",
            measure(reps, || timer_scenario!(Sim, every, timers, events_total / timers)),
            measure(reps, || {
                timer_scenario!(BoxedSim, boxed_every, timers, events_total / timers)
            }),
        ),
        (
            "station_jobs",
            measure(reps, || {
                station_scenario!(
                    Sim,
                    Station::new("bench", 4),
                    Station,
                    stations,
                    events_total / 4
                )
            }),
            measure(reps, || {
                station_scenario!(
                    BoxedSim,
                    BoxedStation::new(4),
                    BoxedStation,
                    stations,
                    events_total / 4
                )
            }),
        ),
        (
            "closure_chain",
            measure(reps, || closure_scenario!(Sim, chains, events_total / chains)),
            measure(reps, || closure_scenario!(BoxedSim, chains, events_total / chains)),
        ),
    ];

    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|(name, slab, boxed)| {
            vec![
                (*name).to_string(),
                slab.events.to_string(),
                fmt_events_per_sec(slab.events, slab.wall_s),
                fmt_events_per_sec(boxed.events, boxed.wall_s),
                format!("{:.2}x", slab.rate() / boxed.rate()),
            ]
        })
        .collect();
    print_table(
        "DES kernel event throughput (slab vs boxed baseline)",
        &["scenario", "events", "slab", "boxed", "speedup"],
        &rows,
    );

    // The acceptance target covers the allocation-free fast paths; the
    // closure scenario still boxes on both sides and is reported as-is.
    let hot: Vec<&(&str, Measurement, Measurement)> = scenarios
        .iter()
        .filter(|(name, _, _)| *name != "closure_chain")
        .collect();
    let hot_events: u64 = hot.iter().map(|(_, s, _)| s.events).sum();
    let hot_slab_wall: f64 = hot.iter().map(|(_, s, _)| s.wall_s).sum();
    let hot_boxed_wall: f64 = hot.iter().map(|(_, _, b)| b.wall_s).sum();
    let hot_speedup = (hot_events as f64 / hot_slab_wall) / (hot_events as f64 / hot_boxed_wall);
    let meets = hot_speedup >= 2.0;
    let status = if meets {
        "ok"
    } else if smoke {
        "below target at smoke scale (expected; the full run is authoritative)"
    } else {
        "BELOW TARGET"
    };
    println!("hot-path speedup (timers + stations): {hot_speedup:.2}x (target 2.00x) -- {status}");

    // Macro check: a scaled Fig. 8(a) industrial slice, timed end-to-end.
    let scale = if smoke { arg_f64("scale", 25.0) } else { lambda_bench::scale_from_args() };
    let params = lambda_bench::IndustrialParams::spotify(25_000.0, scale, seed);
    let started = Instant::now();
    let report = lambda_bench::run_industrial(lambda_bench::SystemKind::Lambda, &params);
    let fig08a_wall = started.elapsed().as_secs_f64();
    println!(
        "fig08a (lambda, scale {scale:.0}): {} ops completed in {fig08a_wall:.2}s wall-clock \
         ({:.0} sim-ops per wall-second)",
        report.completed,
        report.completed as f64 / fig08a_wall.max(1e-12),
    );

    let scenario_json: Vec<String> = scenarios
        .iter()
        .map(|(name, slab, boxed)| {
            format!(
                concat!(
                    "    {{\"scenario\": \"{}\", \"events\": {}, ",
                    "\"slab_events_per_sec\": {:.0}, \"boxed_events_per_sec\": {:.0}, ",
                    "\"speedup\": {:.3}}}"
                ),
                name,
                slab.events,
                slab.rate(),
                boxed.rate(),
                slab.rate() / boxed.rate(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"kernel\",\n  \"mode\": \"{mode}\",\n  \"scenarios\": [\n{scenarios}\n  ],\n  \
         \"hot_path_speedup\": {hot_speedup:.3},\n  \"target_speedup\": 2.0,\n  \
         \"meets_target\": {meets},\n  \"fig08a\": {{\"system\": \"lambda\", \"scale\": {scale}, \
         \"wall_s\": {fig08a_wall:.3}, \"completed_ops\": {completed}, \
         \"sim_ops_per_wall_sec\": {ops_rate:.0}}}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        scenarios = scenario_json.join(",\n"),
        completed = report.completed,
        ops_rate = report.completed as f64 / fig08a_wall.max(1e-12),
    );
    // Smoke runs are a CI liveness check, not a measurement; keep them from
    // clobbering the recorded full-size numbers.
    let path = write_json(if smoke { "BENCH_kernel_smoke" } else { "BENCH_kernel" }, &json);
    println!("wrote {}", path.display());
}
