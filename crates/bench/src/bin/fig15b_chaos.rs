//! Fig. 15(b) — beyond-paper: deterministic chaos sweep over the unified
//! fault plane, one fault class per run, each followed by a post-run
//! invariant audit.
//!
//! Every run builds a small λFS system, installs one [`FaultPlan`],
//! drives a closed-loop mixed read/write workload, drains the event
//! queue, and audits (namespace↔store consistency, no leaked locks or
//! transactions, no orphaned invocations, op-count conservation). The
//! binary exits nonzero if any audit fails, so it doubles as a CI gate.
//!
//! `--smoke` shortens the measured window; `--seed=N` reseeds every run;
//! `--durable` swaps in the WAL-backed durable store backend, so shard
//! failovers recover by WAL replay and the audit additionally checks
//! post-crash shadow↔table agreement.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_bench::*;
use lambda_fs::{AuditReport, DfsService, LambdaFs, LambdaFsConfig};
use lambda_namespace::{DfsPath, FsOp};
use lambda_sim::fault::FaultPlan;
use lambda_sim::{Sim, SimDuration, SimTime};

/// One chaos run's summary.
struct ChaosReport {
    label: &'static str,
    throughput: f64,
    mean_latency_ms: f64,
    issued: u64,
    completed: u64,
    retries: u64,
    timeouts: u64,
    retries_exhausted: u64,
    load_sheds: u64,
    net_dropped: u64,
    net_duplicated: u64,
    net_delayed: u64,
    shard_crashes: u64,
    kills: u64,
    audit: AuditReport,
}

/// Closed-loop driver: every client keeps exactly one op in flight until
/// the measured window closes, so the run terminates by construction.
struct Driver {
    fs: Rc<LambdaFs>,
    dirs: Vec<DfsPath>,
    until: SimTime,
    fresh: RefCell<u64>,
}

impl Driver {
    fn pick(&self, sim: &mut Sim) -> FsOp {
        let dir = self.dirs[sim.rng().pick_index(self.dirs.len())].clone();
        let r = sim.rng().gen_unit();
        if r < 0.45 {
            FsOp::Stat(dir.join("file00000").expect("valid"))
        } else if r < 0.65 {
            FsOp::ReadFile(dir.join("file00001").expect("valid"))
        } else if r < 0.75 {
            FsOp::Ls(dir)
        } else {
            let n = {
                let mut fresh = self.fresh.borrow_mut();
                *fresh += 1;
                *fresh
            };
            FsOp::CreateFile(dir.join(&format!("chaos{n:06}")).expect("valid"))
        }
    }

    fn kick(self: &Rc<Self>, sim: &mut Sim, client: usize) {
        if sim.now() >= self.until {
            return;
        }
        let op = self.pick(sim);
        let this = Rc::clone(self);
        self.fs.submit(
            sim,
            client,
            op,
            Box::new(move |sim, _result| this.kick(sim, client)),
        );
    }
}

fn run_chaos(seed: u64, label: &'static str, spec: &str, secs: u64, durable: bool) -> ChaosReport {
    let plan = FaultPlan::parse(spec).expect("valid fault spec");
    let mut sim = Sim::new(seed);
    let fs = Rc::new(LambdaFs::build(
        &mut sim,
        LambdaFsConfig {
            deployments: 4,
            clients: 16,
            client_vms: 4,
            cluster_vcpus: 64,
            durability: durable.then(lambda_store::DurabilityConfig::default),
            ..Default::default()
        },
    ));
    fs.start(&mut sim);
    fs.install_fault_plan(&mut sim, &plan);
    let root: DfsPath = "/chaos".parse().expect("valid");
    let dirs = DfsService::bootstrap_tree(fs.as_ref(), &root, 16, 8);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(3));

    let driver = Rc::new(Driver {
        fs: Rc::clone(&fs),
        dirs,
        until: sim.now() + SimDuration::from_secs(secs),
        fresh: RefCell::new(0),
    });
    for client in 0..fs.client_count() {
        driver.kick(&mut sim, client);
    }
    sim.run_for(SimDuration::from_secs(secs));
    // Drain: outstanding retries/timeouts resolve within
    // max_retries × client_timeout, and the platform's request TTL expires
    // anything still queued — all while maintenance keeps ticking.
    sim.run_for(SimDuration::from_secs(45));
    fs.stop(&mut sim);
    sim.run();

    let audit = fs.audit();
    let m = fs.metrics().borrow().clone();
    let (net_dropped, net_duplicated, net_delayed) = fs.client_lib().fault_stats();
    ChaosReport {
        label,
        throughput: m.mean_throughput(),
        mean_latency_ms: m.mean_latency().as_secs_f64() * 1e3,
        issued: m.issued,
        completed: m.completed,
        retries: m.retries,
        timeouts: m.timeouts,
        retries_exhausted: m.retries_exhausted,
        load_sheds: m.load_sheds,
        net_dropped,
        net_duplicated,
        net_delayed,
        shard_crashes: fs.db().stats().shard_crashes,
        kills: fs.platform().stats().kills,
        audit,
    }
}

fn main() {
    let seed = arg_u64("seed", 52);
    let secs = if arg_flag("smoke") { 5 } else { 20 };
    let durable = arg_flag("durable");
    // Windows are absolute sim times; the workload occupies roughly
    // [3s, 3s + secs], so every class lands inside the measured window.
    let classes: Vec<(&'static str, String)> = vec![
        ("baseline", String::new()),
        ("net-drop", "drop@4s-10s:p=0.25".into()),
        ("net-delay", "delay@4s-10s:p=0.5,ms=40".into()),
        ("net-dup", "dup@4s-10s:p=0.25".into()),
        ("partition", "part@4s-8s:a=0,b=1000".into()),
        ("shard-failover", "shard@6s:shard=1,down=3s".into()),
        ("kill-burst", "kill@6s:count=3".into()),
        ("cold-storm", "kill@6s:count=3;storm@5s-15s:x=6".into()),
        (
            "combined",
            "drop@4s-8s:p=0.15;delay@6s-12s:p=0.3,ms=30;part@5s-7s:a=1,b=1002;\
             shard@7s:shard=2,down=2s;kill@9s:count=2;storm@8s-14s:x=4"
                .into(),
        ),
    ];
    let jobs: Vec<Box<dyn FnOnce() -> ChaosReport + Send>> = classes
        .into_iter()
        .map(|(label, spec)| {
            Box::new(move || run_chaos(seed, label, &spec, secs, durable))
                as Box<dyn FnOnce() -> ChaosReport + Send>
        })
        .collect();
    let reports = run_parallel_ops(jobs, |r| r.completed);

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                fmt_ops(r.throughput),
                fmt_ms(r.mean_latency_ms),
                format!("{}/{}", r.completed, r.issued),
                r.retries.to_string(),
                format!("{}/{}/{}", r.timeouts, r.retries_exhausted, r.load_sheds),
                format!("{}/{}/{}", r.net_dropped, r.net_duplicated, r.net_delayed),
                format!("{}/{}", r.shard_crashes, r.kills),
                if r.audit.is_clean() {
                    format!("clean ({})", r.audit.checks)
                } else {
                    format!("FAILED ({})", r.audit.violations.len())
                },
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 15(b): deterministic chaos sweep (seed {seed}, {secs}s window{})",
            if durable { ", durable backend" } else { "" }
        ),
        &[
            "fault class",
            "avg tp",
            "avg latency",
            "done/gen",
            "retries",
            "to/exh/shed",
            "drop/dup/delay",
            "crash/kill",
            "audit",
        ],
        &rows,
    );

    let mut failed = false;
    for r in &reports {
        if !r.audit.is_clean() {
            failed = true;
            println!("\n{} audit violations:", r.label);
            print!("{}", r.audit);
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nall {} fault classes audited clean: every op reached a terminal state,", reports.len());
    println!("no lock/txn/invocation leaked, and the namespace matches the store.");
}
