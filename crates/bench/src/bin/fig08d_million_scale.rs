//! Beyond-paper memory-footprint sweep: λFS metadata service at
//! 25k–1M clients over namespaces up to 12M inodes.
//!
//! The paper evaluates λFS at 25k/50k-op throughput against a ~100k-inode
//! tree; this bench asks what the *reproduction's* resident footprint does
//! when the namespace and client population grow by two orders of
//! magnitude. Two numbers matter:
//!
//! * **bytes/inode** — live-heap growth across [`DfsService::bootstrap_tree`]
//!   divided by the inodes created (store rows + children index + interner);
//! * **bytes/client** — live-heap growth across [`LambdaFs::build`] divided
//!   by the client count. The delta includes the system's fixed build cost
//!   (store, platform, deployments), so it over-reports slightly at small
//!   client counts and converges to the true per-client figure at 25k+.
//!
//! Byte accounting needs the counting global allocator: build with
//! `--features alloc-stats`. Without it the sweep still runs (wall-clock
//! and sim-op throughput are reported) and the byte fields are zero.
//!
//! A `reference_scale25` section replays the fig08a λFS configuration at
//! scale 25 (the exact system the performance figures run, via
//! [`lambda_config`]) and compares its bytes/inode against the value
//! measured on the tree *before* the footprint overhaul, pinning the
//! optimization's claimed reduction in the committed JSON.
//!
//! Flags: `--smoke` (tiny points for CI), `--threads=N` (sweep width;
//! byte deltas are exact only at the default sequential width because the
//! allocator counters are process-global), `--seed=N`, `--phase-timings`
//! (print a per-point wall-clock breakdown of build/bootstrap/start/
//! prewarm/warmup/issue/drain — the profile that directs scale-cliff
//! work; the same breakdown is always emitted into the JSON),
//! `--point=N` (run only the N-th sweep point, 1-based, and skip the JSON
//! write — for iterating on one scale without clobbering the committed
//! results), `--clients=N --dirs=N` (run one custom point instead of the
//! sweep), `--ops=N` (override the issue-phase op count). All three
//! diagnostic flags skip the JSON write.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

use lambda_allocstats as mem;
use lambda_bench::*;
use lambda_fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambda_namespace::{DfsPath, FsOp, InodeName};
use lambda_sim::{every, Sim, SimDuration, SimRng};

#[cfg(feature = "alloc-stats")]
#[global_allocator]
static COUNTING_ALLOC: mem::CountingAlloc = mem::CountingAlloc;

/// Bytes/inode measured by this binary's `reference_scale25` run on the
/// tree before the footprint overhaul (the commit introducing this bench),
/// with `--features alloc-stats` on a sequential sweep. The committed JSON
/// reports the reduction against these.
const PRE_PR_BYTES_PER_INODE_SCALE25: f64 = 295.0;
/// Bytes/client measured at the 25k-client sweep point before the
/// overhaul (same capture protocol as
/// [`PRE_PR_BYTES_PER_INODE_SCALE25`]).
const PRE_PR_BYTES_PER_CLIENT_25K: f64 = 81.4;

/// Directory fan-out of the sweep trees: 48 files per directory, matching
/// the industrial workload's layout, so each directory accounts for 49
/// inodes.
const FILES_PER_DIR: usize = 48;

/// Wall-clock phases of one sweep point, in execution order. `issue` is
/// the steady-state window (warmed system, reads in flight) — the phase
/// the scale-cliff acceptance ratio is computed from.
const PHASES: &[&str] = &["build", "bootstrap", "start", "prewarm", "warmup", "issue", "drain"];

struct PointResult {
    clients: u32,
    dirs: usize,
    inodes_created: usize,
    build_bytes: u64,
    bootstrap_bytes: u64,
    peak_bytes: u64,
    bytes_per_client: f64,
    bytes_per_inode: f64,
    build_wall_secs: f64,
    bootstrap_wall_secs: f64,
    run_wall_secs: f64,
    /// Seconds per phase, parallel to [`PHASES`].
    phase_secs: Vec<f64>,
    sim_ops: u64,
    issued: u64,
    accounted: u64,
}

fn sweep_config(clients: u32) -> LambdaFsConfig {
    LambdaFsConfig {
        clients,
        // The evaluation's client fleet: 8 VMs, 128 clients per TCP
        // server. Caches keep their industrial sizing — the sweep's read
        // load touches a bounded slice of the tree, so cache growth is
        // bounded by the ops issued, not the namespace size.
        ..Default::default()
    }
}

/// Issues `total_ops` read-class operations (70 % read / 30 % stat) at
/// `rate` ops/sec from uniformly random clients against uniformly random
/// bootstrap files, building each target path on the fly — at 10M+ inodes,
/// materializing the full file list (as the industrial driver does) would
/// cost more memory than the namespace under measurement.
fn run_lean_reads(
    sim: &mut Sim,
    fs: &Rc<LambdaFs>,
    dirs: &[DfsPath],
    total_ops: u64,
    rate: f64,
    seed: u64,
) -> u64 {
    let file_names: Vec<InodeName> =
        (0..FILES_PER_DIR).map(|f| InodeName::new(&format!("file{f:05}"))).collect();
    let issued = Rc::new(Cell::new(0u64));
    let rng = RefCell::new(SimRng::new(seed ^ 0x00F1_608D));
    let n_clients = fs.client_lib().client_count();
    let per_tick = (rate / 10.0).ceil().max(1.0) as u64;
    {
        let fs = Rc::clone(fs);
        let issued = Rc::clone(&issued);
        let dirs: Rc<[DfsPath]> = dirs.into();
        every(sim, sim.now(), SimDuration::from_millis(100), move |sim| {
            for _ in 0..per_tick {
                if issued.get() >= total_ops {
                    return false;
                }
                let (client, d, f, read) = {
                    let mut rng = rng.borrow_mut();
                    (
                        rng.pick_index(n_clients),
                        rng.pick_index(dirs.len()),
                        rng.pick_index(file_names.len()),
                        rng.gen_bool(0.7),
                    )
                };
                let path = dirs[d].join_interned(file_names[f]);
                let op = if read { FsOp::ReadFile(path) } else { FsOp::Stat(path) };
                issued.set(issued.get() + 1);
                fs.submit(sim, client, op, Box::new(|_sim, _result| {}));
            }
            true
        });
    }
    let run_secs = (total_ops as f64 / rate).ceil() as u64 + 10;
    sim.run_for(SimDuration::from_secs(run_secs));
    issued.get()
}

fn run_point(clients: u32, dirs: usize, total_ops: u64, rate: f64, seed: u64) -> PointResult {
    let mut sim = Sim::new(seed);
    let t_build = Instant::now();
    let build_scope = mem::GLOBAL.scope();
    let fs = Rc::new(LambdaFs::build(&mut sim, sweep_config(clients)));
    let build_bytes = build_scope.grown();
    let build_wall_secs = t_build.elapsed().as_secs_f64();

    let inodes_before = fs.schema().inode_count(fs.db());
    let t_boot = Instant::now();
    let boot_scope = mem::GLOBAL.scope();
    let dir_paths = fs.bootstrap_tree(&DfsPath::root(), dirs, FILES_PER_DIR);
    let bootstrap_bytes = boot_scope.grown();
    let bootstrap_wall_secs = t_boot.elapsed().as_secs_f64();
    let inodes_created = fs.schema().inode_count(fs.db()) - inodes_before;

    mem::reset_peak();
    let t_run = Instant::now();
    let mut t_phase = Instant::now();
    let mut lap = || {
        let s = t_phase.elapsed().as_secs_f64();
        t_phase = Instant::now();
        s
    };
    fs.start(&mut sim);
    let start_secs = lap();
    // Warm every deployment from every VM, as the figures do. The first
    // few dozen directories cover all ten partitions.
    fs.prewarm_with(&mut sim, &dir_paths[..dir_paths.len().min(64)]);
    let prewarm_secs = lap();
    sim.run_for(SimDuration::from_secs(8));
    let warmup_secs = lap();
    let sim_ops = run_lean_reads(&mut sim, &fs, &dir_paths, total_ops, rate, seed);
    let issue_secs = lap();
    fs.stop(&mut sim);
    sim.run_for(SimDuration::from_secs(5));
    let drain_secs = lap();
    let run_wall_secs = t_run.elapsed().as_secs_f64();
    let peak_bytes = mem::peak_bytes();
    let phase_secs = vec![
        build_wall_secs,
        bootstrap_wall_secs,
        start_secs,
        prewarm_secs,
        warmup_secs,
        issue_secs,
        drain_secs,
    ];

    let (issued, accounted) = {
        let metrics = fs.metrics();
        let mut metrics = metrics.borrow_mut();
        metrics.bytes_per_inode = bootstrap_bytes as f64 / inodes_created.max(1) as f64;
        metrics.bytes_per_client = build_bytes as f64 / f64::from(clients.max(1));
        (metrics.issued, metrics.accounted())
    };
    // `audit()` is O(n²) in the namespace — at 10M inodes the billing
    // conservation check below is the affordable integrity gate.
    assert_eq!(issued, accounted, "{clients} clients: operations leaked");

    PointResult {
        clients,
        dirs,
        inodes_created,
        build_bytes,
        bootstrap_bytes,
        peak_bytes,
        bytes_per_client: build_bytes as f64 / f64::from(clients.max(1)),
        bytes_per_inode: bootstrap_bytes as f64 / inodes_created.max(1) as f64,
        build_wall_secs,
        bootstrap_wall_secs,
        run_wall_secs,
        phase_secs,
        sim_ops,
        issued,
        accounted,
    }
}

struct Scale25Reference {
    clients: u32,
    dirs: usize,
    inodes_created: usize,
    bytes_per_inode: f64,
    bootstrap_wall_secs: f64,
}

/// Bootstraps the exact fig08a λFS system at scale 25 and measures its
/// bytes/inode — the acceptance point the pre-PR constant was captured at.
fn scale25_reference(seed: u64) -> Scale25Reference {
    let params = IndustrialParams::spotify(25_000.0, 25.0, seed);
    let spotify = params.spotify_config();
    let cfg = lambda_config(&params, false);
    let clients = cfg.clients;
    let mut sim = Sim::new(seed);
    let fs = LambdaFs::build(&mut sim, cfg);
    let inodes_before = fs.schema().inode_count(fs.db());
    let t_boot = Instant::now();
    let boot_scope = mem::GLOBAL.scope();
    fs.schema().bootstrap_tree(fs.db(), &DfsPath::root(), spotify.dirs, spotify.files_per_dir);
    let bootstrap_bytes = boot_scope.grown();
    let inodes_created = fs.schema().inode_count(fs.db()) - inodes_before;
    Scale25Reference {
        clients,
        dirs: spotify.dirs,
        inodes_created,
        bytes_per_inode: bootstrap_bytes as f64 / inodes_created.max(1) as f64,
        bootstrap_wall_secs: t_boot.elapsed().as_secs_f64(),
    }
}

fn reduction_vs(pre: f64, post: f64) -> Option<f64> {
    (pre > 0.0 && post > 0.0).then(|| pre / post)
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".to_string(), |x| format!("{x:.2}"))
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}kB", b / 1e3)
    } else {
        format!("{b:.0}B")
    }
}

fn main() {
    let seed = arg_u64("seed", 11);
    let smoke = arg_flag("smoke");
    let phase_timings = arg_flag("phase-timings");
    let threads = bench_threads();
    let host_cores = host_cores();
    let counting = mem::active();
    if !counting {
        println!("note: built without --features alloc-stats; byte columns will read 0");
    }

    // (clients, directories): each directory holds 48 files, so the full
    // sweep tops out at 1M clients over a 12.0M-inode namespace and the
    // acceptance point (500k clients / 10.0M inodes) is the third entry.
    let points: &[(u32, usize)] = if smoke {
        &[(512, 100), (2_048, 500)]
    } else {
        &[(25_000, 5_103), (100_000, 20_409), (500_000, 204_082), (1_000_000, 244_898)]
    };
    let only_point = arg_u64("point", 0) as usize;
    let points: &[(u32, usize)] = if only_point > 0 {
        assert!(only_point <= points.len(), "--point={only_point} out of range");
        &points[only_point - 1..only_point]
    } else {
        points
    };
    // `--clients=N --dirs=N`: one custom point, for separating client-count
    // from namespace-size effects when chasing a cliff. Implies no JSON.
    let custom_point = [(arg_u64("clients", 0) as u32, arg_u64("dirs", 0) as usize)];
    let custom = custom_point[0].0 > 0 && custom_point[0].1 > 0;
    let points = if custom { &custom_point[..] } else { points };
    let (total_ops, rate) = if smoke { (1_500, 500.0) } else { (20_000, 4_000.0) };
    let total_ops = match arg_u64("ops", 0) {
        0 => total_ops,
        n => n,
    };

    println!("scale-25 reference (fig08a λFS system):");
    let reference = scale25_reference(seed);
    println!(
        "  {} clients, {} dirs, {} inodes: {:.1} bytes/inode ({:.2}s bootstrap)",
        reference.clients,
        reference.dirs,
        reference.inodes_created,
        reference.bytes_per_inode,
        reference.bootstrap_wall_secs,
    );

    let jobs: Vec<Box<dyn FnOnce() -> PointResult + Send>> = points
        .iter()
        .map(|&(clients, dirs)| {
            Box::new(move || run_point(clients, dirs, total_ops, rate, seed))
                as Box<dyn FnOnce() -> PointResult + Send>
        })
        .collect();
    let results = run_parallel_ops(jobs, |p| p.sim_ops);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|p| {
            vec![
                p.clients.to_string(),
                p.inodes_created.to_string(),
                format!("{:.1}", p.bytes_per_inode),
                format!("{:.0}", p.bytes_per_client),
                fmt_bytes(p.peak_bytes as f64),
                format!("{:.2}s", p.bootstrap_wall_secs),
                format!("{:.2}s", p.run_wall_secs),
                fmt_ops(p.sim_ops as f64 / p.run_wall_secs.max(1e-9)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Million-scale memory sweep: seed {seed}, threads {threads}{}",
            if smoke { ", smoke" } else { "" }
        ),
        &["clients", "inodes", "B/inode", "B/client", "peak", "boot", "run", "ops/wsec"],
        &rows,
    );

    if phase_timings {
        let mut header = vec!["clients", "inodes/s"];
        header.extend(PHASES);
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|p| {
                let mut row = vec![
                    p.clients.to_string(),
                    fmt_ops(p.inodes_created as f64 / p.bootstrap_wall_secs.max(1e-9)),
                ];
                row.extend(p.phase_secs.iter().map(|s| format!("{s:.3}s")));
                row
            })
            .collect();
        print_table("Phase wall-clock breakdown", &header, &rows);
    }

    let inode_reduction =
        reduction_vs(PRE_PR_BYTES_PER_INODE_SCALE25, reference.bytes_per_inode);
    let client_reduction = reduction_vs(
        PRE_PR_BYTES_PER_CLIENT_25K,
        results.first().map_or(0.0, |p| p.bytes_per_client),
    );
    if let Some(r) = inode_reduction {
        println!("\nbytes/inode at scale 25: {r:.2}x reduction vs pre-overhaul");
    }

    let entries: Vec<String> = results
        .iter()
        .map(|p| {
            let phases = PHASES
                .iter()
                .zip(&p.phase_secs)
                .map(|(name, secs)| format!("\"{name}\": {secs:.3}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "    {{\"clients\": {}, \"dirs\": {}, \"inodes\": {}, \
                 \"build_bytes\": {}, \"bootstrap_bytes\": {}, \"peak_bytes\": {}, \
                 \"bytes_per_inode\": {:.2}, \"bytes_per_client\": {:.2}, \
                 \"build_wall_secs\": {:.3}, \"bootstrap_wall_secs\": {:.3}, \
                 \"bootstrap_inodes_per_sec\": {:.0}, \
                 \"run_wall_secs\": {:.3}, \"sim_ops\": {}, \
                 \"sim_ops_per_wall_sec\": {:.1}, \"issued\": {}, \"accounted\": {}, \
                 \"phases\": {{{phases}}}}}",
                p.clients,
                p.dirs,
                p.inodes_created,
                p.build_bytes,
                p.bootstrap_bytes,
                p.peak_bytes,
                p.bytes_per_inode,
                p.bytes_per_client,
                p.build_wall_secs,
                p.bootstrap_wall_secs,
                p.inodes_created as f64 / p.bootstrap_wall_secs.max(1e-9),
                p.run_wall_secs,
                p.sim_ops,
                p.sim_ops as f64 / p.run_wall_secs.max(1e-9),
                p.issued,
                p.accounted,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"million_scale_memory\",\n  \"seed\": {seed},\n  \
         \"smoke\": {smoke},\n  \"threads\": {threads},\n  \"host_cores\": {host_cores},\n  \
         \"alloc_stats_active\": {counting},\n  \
         \"bytes_exact\": {},\n  \
         \"reference_scale25\": {{\"clients\": {}, \"dirs\": {}, \"inodes\": {}, \
         \"bytes_per_inode\": {:.2}, \"pre_pr_bytes_per_inode\": {:.2}, \
         \"inode_reduction_vs_pre_pr\": {}, \"pre_pr_bytes_per_client_25k\": {:.2}, \
         \"client_reduction_vs_pre_pr\": {}}},\n  \"points\": [\n{}\n  ]\n}}\n",
        counting && threads == 1,
        reference.clients,
        reference.dirs,
        reference.inodes_created,
        reference.bytes_per_inode,
        PRE_PR_BYTES_PER_INODE_SCALE25,
        fmt_opt(inode_reduction),
        PRE_PR_BYTES_PER_CLIENT_25K,
        fmt_opt(client_reduction),
        entries.join(",\n")
    );
    if only_point > 0 || custom || arg_u64("ops", 0) > 0 {
        println!("(--point/--clients/--ops set: JSON not written)");
        return;
    }
    let name = if smoke { "BENCH_scale_smoke" } else { "BENCH_scale" };
    let path = write_json(name, &json);
    println!("wrote {}", path.display());
}
