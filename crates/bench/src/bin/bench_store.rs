//! Store-engine microbenchmark: the arena-backed B+ tree
//! ([`lambda_store::bptree::BpTree`]) versus the std `BTreeMap` it
//! replaced, at the fig08d row scales.
//!
//! The fig08d steady-state residual is almost entirely tree descents: at
//! 10M inodes every point get walks a ~720 MB pointer graph, and each
//! level is a DRAM + TLB miss. This bench isolates that cost from the
//! simulator: identical keys, values, and access sequences against both
//! engines, 64-byte values (the size of a packed
//! [`lambda_namespace::Inode`] row), at 250k / 1M / 10M rows.
//!
//! Scenarios per scale:
//!
//! * `get/uni` — point gets, keys uniform over the table;
//! * `get/zipf` — point gets, keys zipf(1)-distributed (hot directories:
//!   rank sampled as `N^u`, which gives the 1/rank density without a
//!   10M-entry CDF table);
//! * `scan48` — 48-row range scans (one directory listing in the fig08d
//!   namespace), visitor-folded, no per-scan allocation on the B+ side;
//! * `insert` — random insert/remove churn (splits, frees, recycling);
//! * `build` — dense bulk build from an ascending stream vs
//!   `BTreeMap::from_iter`.
//!
//! Results (per-scale rates for both engines plus speedups) go to
//! `results/BENCH_store.json`; `--smoke` runs small scales for CI
//! liveness.
//!
//! Flags: `--smoke`, `--seed=N`.

use lambda_bench::{arg_flag, arg_u64, fmt_ops, print_table, write_json};
use lambda_sim::SimRng;
use lambda_store::bptree::BpTree;
use std::collections::BTreeMap;
use std::time::Instant;

// With `--features alloc-stats` the counting allocator is live, which also
// turns on its huge-page advice for the arena tables — the configuration
// the recorded fig08d numbers run under, so the engine comparison here
// must match it.
#[cfg(feature = "alloc-stats")]
#[global_allocator]
static COUNTING_ALLOC: lambda_allocstats::CountingAlloc = lambda_allocstats::CountingAlloc;

/// A 64-byte row, the size of the packed inode row the store actually
/// holds at the fig08d scales.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Row([u64; 8]);

impl Row {
    fn new(k: u64) -> Self {
        Row([k; 8])
    }
}

/// Zipf(s≈1) rank in `[0, n)`: `n^u` has density ∝ 1/rank, so hot keys
/// dominate the way hot directories dominate a metadata workload.
fn zipf_rank(rng: &mut SimRng, n: u64) -> u64 {
    let u = rng.gen_unit();
    ((n as f64).powf(u) as u64).min(n - 1)
}

/// One engine's measured rates at one scale, in ops/sec.
#[derive(Debug, Clone, Copy)]
struct EngineRates {
    get_uniform: f64,
    get_zipf: f64,
    scan48: f64,
    churn: f64,
    build: f64,
}

/// Ops and reps per scenario, scaled down under `--smoke`.
struct Budget {
    gets: u64,
    scans: u64,
    churn: u64,
    reps: u32,
}

/// Best-of-`reps` wall-clock rate for `run`, which returns executed ops.
fn measure(reps: u32, mut run: impl FnMut() -> u64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let started = Instant::now();
        let ops = run();
        let rate = ops as f64 / started.elapsed().as_secs_f64().max(1e-12);
        best = best.max(rate);
    }
    best
}

/// Minimal ordered-map surface both engines expose to the scenarios.
trait Engine {
    fn build(rows: u64) -> Self;
    fn get(&self, k: &u64) -> Option<&Row>;
    fn insert(&mut self, k: u64, v: Row) -> Option<Row>;
    fn remove(&mut self, k: &u64) -> Option<Row>;
    /// Folds the half-open range `[lo, hi)` through `visit`.
    fn scan_range(&self, lo: u64, hi: u64, visit: impl FnMut(&u64, &Row));
}

impl Engine for BpTree<u64, Row> {
    fn build(rows: u64) -> Self {
        BpTree::from_ascending((0..rows).map(|k| (k, Row::new(k))))
    }
    fn get(&self, k: &u64) -> Option<&Row> {
        BpTree::get(self, k)
    }
    fn insert(&mut self, k: u64, v: Row) -> Option<Row> {
        BpTree::insert(self, k, v)
    }
    fn remove(&mut self, k: &u64) -> Option<Row> {
        BpTree::remove(self, k)
    }
    fn scan_range(&self, lo: u64, hi: u64, visit: impl FnMut(&u64, &Row)) {
        self.scan_with(&(lo..hi), visit);
    }
}

impl Engine for BTreeMap<u64, Row> {
    fn build(rows: u64) -> Self {
        (0..rows).map(|k| (k, Row::new(k))).collect()
    }
    fn get(&self, k: &u64) -> Option<&Row> {
        BTreeMap::get(self, k)
    }
    fn insert(&mut self, k: u64, v: Row) -> Option<Row> {
        BTreeMap::insert(self, k, v)
    }
    fn remove(&mut self, k: &u64) -> Option<Row> {
        BTreeMap::remove(self, k)
    }
    fn scan_range(&self, lo: u64, hi: u64, mut visit: impl FnMut(&u64, &Row)) {
        for (k, v) in self.range(lo..hi) {
            visit(k, v);
        }
    }
}

fn run_engine<E: Engine>(rows: u64, seed: u64, budget: &Budget) -> EngineRates {
    // Build once for the read scenarios (and time it).
    let mut built: Option<E> = None;
    let build = measure(budget.reps.min(2), || {
        built = Some(E::build(rows));
        rows
    });
    let table = built.expect("built at least once");

    let get_uniform = measure(budget.reps, || {
        let mut rng = SimRng::new(seed);
        let mut hits = 0u64;
        for _ in 0..budget.gets {
            let k = rng.gen_range(0..rows);
            if table.get(&k).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, budget.gets, "all sampled keys exist");
        budget.gets
    });

    let get_zipf = measure(budget.reps, || {
        let mut rng = SimRng::new(seed ^ 0x5eed);
        let mut hits = 0u64;
        for _ in 0..budget.gets {
            let k = zipf_rank(&mut rng, rows);
            if table.get(&k).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, budget.gets);
        budget.gets
    });

    // 48-row listings: one simulated directory per scan, zipf-hot.
    let dirs = rows / 48;
    let scan48 = measure(budget.reps, || {
        let mut rng = SimRng::new(seed ^ 0xd1f5);
        let mut seen = 0u64;
        for _ in 0..budget.scans {
            let d = zipf_rank(&mut rng, dirs.max(1));
            table.scan_range(d * 48, (d + 1) * 48, |_, v| {
                seen += u64::from(v.0[0] != u64::MAX);
            });
        }
        assert_eq!(seen, budget.scans * 48, "every listing is full");
        budget.scans
    });
    drop(table);

    // Churn on a fresh mid-size table: uniform inserts and removes over a
    // keyspace 2x the live size (so both hit and miss paths run). The
    // rebuild per rep is setup, not churn — it stays outside the clock.
    let churn_rows = rows.min(1_000_000);
    let churn = {
        let mut best = 0.0f64;
        for _ in 0..budget.reps {
            let mut t = E::build(churn_rows);
            let mut rng = SimRng::new(seed ^ 0xc4c4);
            let started = Instant::now();
            for _ in 0..budget.churn {
                let k = rng.gen_range(0..churn_rows * 2);
                if rng.gen_bool(0.5) {
                    t.insert(k, Row::new(k));
                } else {
                    t.remove(&k);
                }
            }
            let rate = budget.churn as f64 / started.elapsed().as_secs_f64().max(1e-12);
            best = best.max(rate);
        }
        best
    };

    EngineRates { get_uniform, get_zipf, scan48, churn, build }
}

fn main() {
    let seed = arg_u64("seed", 17);
    let smoke = arg_flag("smoke");
    let only_rows = arg_u64("rows", 0);
    let scales: &[u64] = if only_rows > 0 {
        &[0] // placeholder, replaced below
    } else if smoke {
        &[25_000, 100_000]
    } else {
        &[250_000, 1_000_000, 10_000_000]
    };
    let scales_owned: Vec<u64> =
        if only_rows > 0 { vec![only_rows] } else { scales.to_vec() };
    let scales = &scales_owned[..];
    let budget = if smoke {
        Budget { gets: 200_000, scans: 20_000, churn: 100_000, reps: 1 }
    } else {
        Budget { gets: 2_000_000, scans: 100_000, churn: 1_000_000, reps: 3 }
    };

    let mut json = String::from("{\n  \"scales\": [\n");
    let mut rows_out: Vec<Vec<String>> = Vec::new();
    for (i, &rows) in scales.iter().enumerate() {
        let bp = run_engine::<BpTree<u64, Row>>(rows, seed, &budget);
        let std = run_engine::<BTreeMap<u64, Row>>(rows, seed, &budget);
        for (name, b, s) in [
            ("get/uni", bp.get_uniform, std.get_uniform),
            ("get/zipf", bp.get_zipf, std.get_zipf),
            ("scan48", bp.scan48, std.scan48),
            ("churn", bp.churn, std.churn),
            ("build", bp.build, std.build),
        ] {
            rows_out.push(vec![
                rows.to_string(),
                name.to_string(),
                fmt_ops(b),
                fmt_ops(s),
                format!("{:.2}x", b / s),
            ]);
        }
        json.push_str(&format!(
            "    {{\"rows\": {rows}, \"bptree\": {{\"get_uniform\": {:.1}, \"get_zipf\": {:.1}, \"scan48\": {:.1}, \"churn\": {:.1}, \"build\": {:.1}}}, \"btreemap\": {{\"get_uniform\": {:.1}, \"get_zipf\": {:.1}, \"scan48\": {:.1}, \"churn\": {:.1}, \"build\": {:.1}}}}}{}\n",
            bp.get_uniform,
            bp.get_zipf,
            bp.scan48,
            bp.churn,
            bp.build,
            std.get_uniform,
            std.get_zipf,
            std.scan48,
            std.churn,
            std.build,
            if i + 1 == scales.len() { "" } else { "," },
        ));
    }
    json.push_str(&format!("  ],\n  \"seed\": {seed},\n  \"smoke\": {smoke}\n}}\n"));

    print_table(
        &format!("Store engine: arena B+ tree vs std BTreeMap (seed {seed}{})",
            if smoke { ", smoke" } else { "" }),
        &["rows", "scenario", "bptree/s", "btreemap/s", "speedup"],
        &rows_out,
    );
    let path = write_json(if smoke { "BENCH_store_smoke" } else { "BENCH_store" }, &json);
    println!("wrote {}", path.display());
}
