//! Quick smoke run of the industrial experiment (dev aid).
use lambda_bench::{run_industrial, IndustrialParams, SystemKind};

fn main() {
    let scale = lambda_bench::arg_f64("scale", 20.0);
    for kind in [SystemKind::Lambda, SystemKind::Hops, SystemKind::HopsCache] {
        let t0 = std::time::Instant::now();
        let r = run_industrial(kind, &IndustrialParams::spotify(25_000.0, scale, 42));
        println!(
            "{:<28} gen={:>8} done={:>8} avg_tp={:>9.0} peak15={:>9.0} lat={:>8.2}ms cost=${:.4} nn_peak={:.0} wall={:?}",
            r.system, r.generated, r.completed, r.avg_throughput, r.peak_sustained,
            r.avg_latency_ms, r.cost_total,
            r.namenodes_per_sec.iter().copied().fold(0.0, f64::max),
            t0.elapsed()
        );
        println!(
            "    retries={} straggler={} anti_thrash={} http={} tcp={} timeouts={}",
            r.retries, r.straggler_resubmits, r.anti_thrash_entries, r.http_rpcs, r.tcp_rpcs,
            r.timeouts
        );
        for (class, mean, p50, p99) in &r.latency_by_class {
            println!("    {class:<8} mean={mean:>9.2}ms p50={p50:>9.2}ms p99={p99:>9.2}ms");
        }
    }
}
