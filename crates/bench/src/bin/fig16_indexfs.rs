//! Fig. 16: λIndexFS vs IndexFS on BeeGFS under the tree-test workload —
//! fixed-size (1M writes + 1M reads total) and variable-size (10k + 10k
//! per client), clients swept 2 → 256.

use lambda_bench::*;

fn main() {
    let full = arg_flag("full");
    let scale = scale_from_args();
    let seed = arg_u64("seed", 53);
    let clients: Vec<u32> =
        if full { vec![2, 4, 8, 16, 32, 64, 128, 256] } else { vec![2, 8, 32, 64] };
    let per_client = if full { 10_000 } else { (10_000.0 / scale) as usize };
    let fixed_total = if full { 1_000_000 } else { (1_000_000.0 / scale) as usize };
    for (title, ops) in
        [("variable-sized (per-client constant)", Some(per_client)), ("fixed-sized (total constant)", None)]
    {
        let jobs: Vec<Box<dyn FnOnce() -> (TreePoint, TreePoint) + Send>> = clients
            .iter()
            .map(|&c| {
                Box::new(move || {
                    (
                        run_tree_point(TreeSystem::IndexFs, c, ops, fixed_total, seed),
                        run_tree_point(TreeSystem::LambdaIndexFs, c, ops, fixed_total, seed),
                    )
                }) as Box<dyn FnOnce() -> (TreePoint, TreePoint) + Send>
            })
            .collect();
        let results = run_parallel(jobs);
        let rows: Vec<Vec<String>> = clients
            .iter()
            .zip(results.iter())
            .map(|(c, (ix, lx))| {
                vec![
                    c.to_string(),
                    fmt_ops(ix.read_throughput),
                    fmt_ops(lx.read_throughput),
                    fmt_ops(ix.write_throughput),
                    fmt_ops(lx.write_throughput),
                    fmt_ops(ix.aggregate_throughput),
                    fmt_ops(lx.aggregate_throughput),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 16 [{title}]"),
            &["clients", "ix read", "λix read", "ix write", "λix write", "ix agg", "λix agg"],
            &rows,
        );
    }
    println!("\npaper: λIndexFS reads consistently above IndexFS (function-side caching);");
    println!("       writes significantly higher (auto-scaling), dipping past 2^6 clients");
    println!("       as the 64-vCPU OpenWhisk cluster saturates — but still above IndexFS.");
}
