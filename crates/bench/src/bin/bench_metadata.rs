//! Metadata-plane hot-path benchmark: the interned-symbol path, arena-trie
//! cache, and zero-clone store versus their preserved baselines.
//!
//! Three scenarios, one per overhauled layer:
//!
//! * `path_resolve` — parse / `parent` / `ancestors` / `join` over deep
//!   paths: the symbol-slice [`DfsPath`] (zero-alloc ancestor walks)
//!   versus a bench-private copy of the pre-overhaul `String`-backed path
//!   (every `parent()` reallocates, `ancestors()` is O(depth²) bytes);
//! * `cache_walk` — insert / lookup / prefix-invalidate mixes against
//!   [`MetadataCache`] (slab trie, intrusive O(1) LRU) versus
//!   [`lambda_namespace::cache_baseline::MetadataCache`] (String-keyed
//!   `BTreeMap` children, `BTreeSet` LRU);
//! * `store_txn` — identical seeded lock → read → upsert → commit scripts
//!   through [`lambda_store::Db`] (pooled keys, slab continuations,
//!   inline-encoded lock keys) versus [`lambda_store::baseline::Db`]
//!   (per-op key clones and boxed-continuation maps).
//!
//! Each scenario reports wall-clock ops/sec for both sides; the composite
//! (geometric-mean) speedup is checked against the ≥1.5× target. Results
//! go to `results/BENCH_metadata.json`.
//!
//! Flags: `--smoke` (small op counts, for CI), `--seed=N`.

use lambda_bench::{arg_flag, arg_u64, fmt_events_per_sec, print_table, write_json};
use lambda_namespace::{DfsPath, Inode, MetadataCache, ROOT_INODE_ID};
use lambda_sim::params::StoreParams;
use lambda_sim::{Sim, SimDuration};
use lambda_store::LockMode;
use std::time::Instant;

/// One side's measurement of one scenario.
struct Measurement {
    events: u64,
    wall_s: f64,
}

impl Measurement {
    fn rate(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-12)
    }
}

/// Best-of-`reps` wall clock for `run`, which returns executed ops.
fn measure(reps: u32, mut run: impl FnMut() -> u64) -> Measurement {
    let mut best = Measurement { events: 0, wall_s: f64::INFINITY };
    for _ in 0..reps {
        let started = Instant::now();
        let events = run();
        let wall_s = started.elapsed().as_secs_f64();
        if wall_s < best.wall_s {
            best = Measurement { events, wall_s };
        }
    }
    best
}

// ---------------------------------------------------------------------
// path_resolve: bench-private copy of the pre-overhaul String path
// ---------------------------------------------------------------------

/// The pre-overhaul path representation: one normalized `String`. Kept
/// verbatim from the original `namespace::path` so the scenario measures
/// exactly what the symbol overhaul replaced. Its value is standing still.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct StrPath(String);

impl StrPath {
    fn root() -> StrPath {
        StrPath("/".to_string())
    }

    fn is_root(&self) -> bool {
        self.0 == "/"
    }

    fn parse(s: &str) -> Option<StrPath> {
        if !s.starts_with('/') {
            return None;
        }
        if s == "/" {
            return Some(StrPath::root());
        }
        let mut normalized = String::with_capacity(s.len());
        for comp in s.split('/').filter(|c| !c.is_empty()) {
            if comp == "." || comp == ".." {
                return None;
            }
            normalized.push('/');
            normalized.push_str(comp);
        }
        Some(StrPath(normalized))
    }

    fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').filter(|c| !c.is_empty())
    }

    fn depth(&self) -> usize {
        self.components().count()
    }

    fn file_name(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            self.0.rsplit('/').next()
        }
    }

    fn parent(&self) -> Option<StrPath> {
        if self.is_root() {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(StrPath::root()),
            Some(idx) => Some(StrPath(self.0[..idx].to_string())),
            None => None,
        }
    }

    fn join(&self, name: &str) -> Result<StrPath, ()> {
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(());
        }
        if self.is_root() {
            Ok(StrPath(format!("/{name}")))
        } else {
            Ok(StrPath(format!("{}/{name}", self.0)))
        }
    }

    /// Ancestors root→parent, exclusive of `self` (the pre-overhaul
    /// signature: an owned `Vec`, one fresh `String` per ancestor).
    fn ancestors(&self) -> Vec<StrPath> {
        let mut out = Vec::new();
        let mut current = self.parent();
        while let Some(p) = current {
            current = p.parent();
            out.push(p);
        }
        out.reverse();
        out
    }
}

/// The resolve-shaped op mix both path types run: parse, full ancestor
/// walk (what `resolve_chain` and cache fills do per op), a child join,
/// and a file-name probe. Returns an accumulator so nothing is optimized
/// away; `events` is the op count.
macro_rules! path_scenario {
    ($parse:expr, $inputs:expr) => {{
        let mut acc = 0u64;
        let mut ops = 0u64;
        for s in $inputs {
            let p = $parse(s.as_str());
            for a in p.ancestors() {
                acc = acc.wrapping_add(a.depth() as u64);
            }
            let child = p.join("attempt").expect("valid component");
            acc = acc.wrapping_add(child.depth() as u64);
            acc = acc.wrapping_add(p.file_name().map_or(0, str::len) as u64);
            if let Some(parent) = p.parent() {
                acc ^= parent.depth() as u64;
            }
            ops += 4;
        }
        (ops, acc)
    }};
}

fn path_inputs(count: usize) -> Vec<String> {
    // Depths 2..=9 across a synthetic tree; realistic component lengths.
    (0..count)
        .map(|i| {
            let depth = 2 + i % 8;
            let mut s = String::new();
            for d in 0..depth {
                s.push_str(&format!("/dir{:02}-{:03}", d, (i * 31 + d) % 200));
            }
            s.push_str(&format!("/file{:05}.dat", i % 10_000));
            s
        })
        .collect()
}

// ---------------------------------------------------------------------
// cache_walk
// ---------------------------------------------------------------------

/// Pre-built working set: `(path, chain)` pairs for `dirs` directories of
/// `files` files each, plus per-directory prefixes for invalidation.
struct CacheWorkload {
    entries: Vec<(DfsPath, Vec<Inode>)>,
    dir_paths: Vec<DfsPath>,
}

fn cache_workload(dirs: usize, files: usize) -> CacheWorkload {
    let root = Inode::root();
    let mut entries = Vec::with_capacity(dirs * files);
    let mut dir_paths = Vec::with_capacity(dirs);
    let mut next_id = ROOT_INODE_ID + 1;
    for d in 0..dirs {
        let dir_name = format!("dir{d:04}");
        let dir_path: DfsPath = format!("/{dir_name}").parse().expect("valid");
        let dir_inode = Inode::directory(next_id, ROOT_INODE_ID, dir_name);
        next_id += 1;
        dir_paths.push(dir_path.clone());
        for f in 0..files {
            let file_name = format!("file{f:04}");
            let file_path = dir_path.join(&file_name).expect("valid");
            let file_inode = Inode::file(next_id, dir_inode.id, file_name);
            next_id += 1;
            entries.push((file_path, vec![root.clone(), dir_inode.clone(), file_inode]));
        }
    }
    CacheWorkload { entries, dir_paths }
}

/// The NameNode-shaped op mix: fill, then a lookup-heavy steady state with
/// periodic prefix invalidations and re-fills. Capacity is set below the
/// working set so the LRU actually evicts. Returns the op count; asserts
/// the two implementations agree via the hit counter.
macro_rules! cache_scenario {
    ($cache_ty:ty, $wl:expr, $lookups:expr) => {{
        let wl: &CacheWorkload = $wl;
        let mut cache = <$cache_ty>::new(wl.entries.len() * 2 / 3);
        let mut ops = 0u64;
        for (path, chain) in &wl.entries {
            cache.insert_chain(path, chain);
            ops += 1;
        }
        for i in 0..$lookups {
            let (path, chain) = &wl.entries[(i * 7919) % wl.entries.len()];
            if cache.lookup(path).is_none() {
                cache.insert_chain(path, chain);
                ops += 1;
            }
            ops += 1;
            if i % 4096 == 4095 {
                cache.invalidate_prefix(&wl.dir_paths[(i / 4096) % wl.dir_paths.len()]);
                ops += 1;
            }
        }
        (ops, cache.stats().hits)
    }};
}

// ---------------------------------------------------------------------
// store_txn
// ---------------------------------------------------------------------

/// Closed-loop transaction script: each txn exclusively locks two rows,
/// reads them under the locks, rewrites one, and commits; the commit
/// continuation starts the next txn. Identical keys, seed, and charge
/// sequence on both stores. Returns (ops, final sim time in nanos) so the
/// engines' agreement is also checked.
macro_rules! store_scenario {
    ($db_ty:ty, $seed:expr, $rows:expr, $txns:expr) => {{
        let mut sim = Sim::new($seed);
        let db = <$db_ty>::new(&StoreParams::default(), SimDuration::from_secs(5));
        let table = db.create_table::<u64, u64>("inodes");
        for i in 0..$rows {
            db.bootstrap_insert(table, i, i * 10);
        }
        fn pump(
            db: &$db_ty,
            table: lambda_store::TableHandle<u64, u64>,
            sim: &mut Sim,
            rows: u64,
            i: u64,
            left: u64,
        ) {
            if left == 0 {
                return;
            }
            let a = (i * 17) % rows;
            let b = (i * 31 + 7) % rows;
            let txn = db.begin();
            let mut keys = vec![db.lock_key(table, &a), db.lock_key(table, &b)];
            keys.sort();
            keys.dedup();
            let db2 = db.clone();
            db.lock(sim, txn, keys, LockMode::Exclusive, move |sim, r| {
                r.expect("uncontended");
                let db3 = db2.clone();
                db2.read_locked(
                    sim,
                    txn,
                    table,
                    vec![a, b],
                    LockMode::Exclusive,
                    move |sim, values| {
                        let values = values.expect("locked");
                        let sum: u64 = values.iter().map(|r| r.unwrap_or(0)).sum();
                        db3.upsert(txn, table, a, sum).expect("locked");
                        let db4 = db3.clone();
                        db3.commit(sim, txn, move |sim, r| {
                            r.expect("commit");
                            pump(&db4, table, sim, rows, i + 1, left - 1);
                        });
                    },
                );
            });
        }
        pump(&db, table, &mut sim, $rows, 0, $txns);
        sim.run();
        assert_eq!(db.stats().commits, $txns, "script ran to completion");
        ($txns, sim.now().as_nanos())
    }};
}

fn main() {
    let smoke = arg_flag("smoke");
    let reps = if smoke { 2 } else { 3 };
    let seed = arg_u64("seed", 42);
    // Op counts per scenario; the full run sizes match a fig10-scale
    // steady state (hundreds of directories, tens of thousands of ops).
    let (n_paths, cache_dirs, cache_files, cache_lookups, store_rows, store_txns): (
        usize,
        usize,
        usize,
        usize,
        u64,
        u64,
    ) = if smoke { (4_000, 32, 16, 20_000, 64, 2_000) } else { (120_000, 192, 48, 600_000, 512, 40_000) };

    let inputs = path_inputs(n_paths);
    let wl = cache_workload(cache_dirs, cache_files);

    let mut agreement: Vec<String> = Vec::new();
    let scenarios: Vec<(&str, Measurement, Measurement)> = vec![
        (
            "path_resolve",
            measure(reps, || {
                let (ops, acc) = path_scenario!(
                    |s: &str| -> DfsPath { s.parse().expect("valid") },
                    &inputs
                );
                std::hint::black_box(acc);
                ops
            }),
            measure(reps, || {
                let (ops, acc) =
                    path_scenario!(|s: &str| StrPath::parse(s).expect("valid"), &inputs);
                std::hint::black_box(acc);
                ops
            }),
        ),
        {
            let new = measure(reps, || {
                let (ops, hits) = cache_scenario!(MetadataCache, &wl, cache_lookups);
                std::hint::black_box(hits);
                ops
            });
            let (_, new_hits) = cache_scenario!(MetadataCache, &wl, cache_lookups);
            let (_, base_hits) = cache_scenario!(
                lambda_namespace::cache_baseline::MetadataCache,
                &wl,
                cache_lookups
            );
            agreement.push(format!(
                "cache_walk: arena and baseline caches agree on {new_hits} hits: {}",
                new_hits == base_hits
            ));
            assert_eq!(new_hits, base_hits, "cache implementations diverged");
            let base = measure(reps, || {
                let (ops, hits) = cache_scenario!(
                    lambda_namespace::cache_baseline::MetadataCache,
                    &wl,
                    cache_lookups
                );
                std::hint::black_box(hits);
                ops
            });
            ("cache_walk", new, base)
        },
        {
            let mut new_clock = 0u64;
            let new = measure(reps, || {
                let (ops, clock) = store_scenario!(lambda_store::Db, seed, store_rows, store_txns);
                new_clock = clock;
                ops
            });
            let mut base_clock = 0u64;
            let base = measure(reps, || {
                let (ops, clock) =
                    store_scenario!(lambda_store::baseline::Db, seed, store_rows, store_txns);
                base_clock = clock;
                ops
            });
            agreement.push(format!(
                "store_txn: both stores finish the script at sim time {new_clock}ns: {}",
                new_clock == base_clock
            ));
            assert_eq!(new_clock, base_clock, "store charge sequences diverged");
            ("store_txn", new, base)
        },
    ];

    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|(name, new, base)| {
            vec![
                (*name).to_string(),
                new.events.to_string(),
                fmt_events_per_sec(new.events, new.wall_s),
                fmt_events_per_sec(base.events, base.wall_s),
                format!("{:.2}x", new.rate() / base.rate()),
            ]
        })
        .collect();
    print_table(
        "metadata-plane hot path (overhauled vs baseline)",
        &["scenario", "ops", "new", "baseline", "speedup"],
        &rows,
    );
    for line in &agreement {
        println!("{line}");
    }

    // Composite: geometric mean across the three layers, so no single
    // scenario's op-count choice dominates the acceptance number.
    let product: f64 =
        scenarios.iter().map(|(_, new, base)| new.rate() / base.rate()).product();
    let composite = product.powf(1.0 / scenarios.len() as f64);
    let meets = composite >= 1.5;
    let status = if meets {
        "ok"
    } else if smoke {
        "below target at smoke scale (expected; the full run is authoritative)"
    } else {
        "BELOW TARGET"
    };
    println!("composite speedup (geomean): {composite:.2}x (target 1.50x) -- {status}");

    let scenario_json: Vec<String> = scenarios
        .iter()
        .map(|(name, new, base)| {
            format!(
                concat!(
                    "    {{\"scenario\": \"{}\", \"events\": {}, ",
                    "\"new_events_per_sec\": {:.0}, \"baseline_events_per_sec\": {:.0}, ",
                    "\"speedup\": {:.3}}}"
                ),
                name,
                new.events,
                new.rate(),
                base.rate(),
                new.rate() / base.rate(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"metadata\",\n  \"mode\": \"{mode}\",\n  \"scenarios\": [\n{scenarios}\n  ],\n  \
         \"composite_speedup\": {composite:.3},\n  \"target_speedup\": 1.5,\n  \
         \"meets_target\": {meets}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        scenarios = scenario_json.join(",\n"),
    );
    // Smoke runs are a CI liveness check, not a measurement; keep them from
    // clobbering the recorded full-size numbers.
    let path = write_json(if smoke { "BENCH_metadata_smoke" } else { "BENCH_metadata" }, &json);
    println!("wrote {}", path.display());
}
