//! Fig. 8(c): performance-per-cost (ops/sec per $/sec) over time for λFS
//! vs HopsFS+Cache at both workload bases.

use lambda_bench::*;

fn main() {
    let scale = scale_from_args();
    let seed = arg_u64("seed", 44);
    let jobs: Vec<Box<dyn FnOnce() -> (String, IndustrialReport) + Send>> = vec![
        Box::new(move || {
            ("lambda-fs 25k".to_string(),
             run_industrial(SystemKind::Lambda, &IndustrialParams::spotify(25_000.0, scale, seed)))
        }),
        Box::new(move || {
            ("hopsfs+cache 25k".to_string(),
             run_industrial(SystemKind::HopsCache, &IndustrialParams::spotify(25_000.0, scale, seed)))
        }),
        Box::new(move || {
            ("lambda-fs 50k".to_string(),
             run_industrial(SystemKind::Lambda, &IndustrialParams::spotify(50_000.0, scale, seed)))
        }),
        Box::new(move || {
            ("hopsfs+cache 50k".to_string(),
             run_industrial(SystemKind::HopsCache, &IndustrialParams::spotify(50_000.0, scale, seed)))
        }),
    ];
    let results = run_parallel(jobs);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, r)| {
            let avg_ppc = if r.cost_total > 1e-12 {
                r.avg_throughput * r.throughput_per_sec.len() as f64 / r.cost_total
            } else {
                0.0
            };
            vec![label.clone(), fmt_ops(r.avg_throughput * scale), format!("${:.4}", r.cost_total),
                 fmt_ops(avg_ppc)]
        })
        .collect();
    print_table(
        &format!("Fig. 8(c) summary (scale 1/{scale})"),
        &["run", "avg tp (≈full)", "total cost (scaled)", "avg perf-per-cost (ops/$)"],
        &rows,
    );
    let labels: Vec<&str> = results.iter().map(|(l, _)| l.as_str()).collect();
    let series: Vec<Vec<f64>> =
        results.iter().map(|(_, r)| r.perf_per_cost_per_sec.clone()).collect();
    print_series("Fig. 8(c): ops/sec per $/sec over time", &labels, &series, 10);
    println!("\npaper: λFS's per-second performance-per-cost is a large multiple of");
    println!("       HopsFS+Cache's throughout both workloads (Fig. 8(c)).");
}
