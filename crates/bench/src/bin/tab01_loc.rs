//! Table 1 analog: lines of code per component of this reproduction
//! (the paper reports 67,352 lines of Java/C++ across λFS, benchmark
//! drivers, λIndexFS, and scripts).

use lambda_bench::loc::{inventory, workspace_root};
use lambda_bench::print_table;

fn main() {
    let entries = inventory(&workspace_root());
    let mut rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| vec![e.component.clone(), e.files.to_string(), e.lines.to_string()])
        .collect();
    let total_lines: usize = entries.iter().map(|e| e.lines).sum();
    let total_files: usize = entries.iter().map(|e| e.files).sum();
    rows.push(vec!["TOTAL".into(), total_files.to_string(), total_lines.to_string()]);
    print_table(
        "Table 1 (reproduction): Rust lines of code per component",
        &["component", "files", "non-empty lines"],
        &rows,
    );
    println!("\npaper (Table 1): 67,352 LoC of Java/C++ total; λFS itself 36,685.");
}
