//! Fig. 13: performance-per-cost vs client count for read-class operations
//! (read / ls / stat), λFS vs HopsFS+Cache.

use lambda_bench::*;
use lambda_namespace::OpClass;

fn main() {
    let scale = scale_from_args();
    let full = arg_flag("full");
    let seed = arg_u64("seed", 49);
    let vcpus = ((512.0 / scale) as u32).max(64);
    let clients: Vec<u32> =
        if full { vec![8, 16, 32, 64, 128, 256, 512, 1024] } else { vec![8, 32, 128, 256] };
    let ops_per_client = if full { 3072 } else { 512 };
    for op in [OpClass::Read, OpClass::Ls, OpClass::Stat] {
        let jobs: Vec<Box<dyn FnOnce() -> (MicroPoint, MicroPoint) + Send>> = clients
            .iter()
            .map(|&c| {
                Box::new(move || {
                    let p = MicroParams {
                        deployments: 10,
                        op,
                        clients: c,
                        vcpus,
                        ops_per_client,
                        store_slowdown: scale,
                        seed,
                        autoscale_limit: None,
                                concurrency_level: 4,
                    };
                    (run_micro_point(SystemKind::Lambda, &p),
                     run_micro_point(SystemKind::HopsCache, &p))
                }) as Box<dyn FnOnce() -> (MicroPoint, MicroPoint) + Send>
            })
            .collect();
        let points = run_parallel(jobs);
        let rows: Vec<Vec<String>> = clients
            .iter()
            .zip(points.iter())
            .map(|(c, (l, h))| {
                vec![
                    c.to_string(),
                    fmt_ops(l.perf_per_cost),
                    fmt_ops(h.perf_per_cost),
                    format!("{:.2}x", l.perf_per_cost / h.perf_per_cost.max(1e-9)),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 13 [{op}] perf-per-cost (ops/sec per $/sec) vs clients"),
            &["clients", "lambda-fs", "hopsfs+cache", "ratio"],
            &rows,
        );
    }
    println!("\npaper: λFS wins perf-per-cost for read and ls at every size (e.g. ls 32.74%");
    println!("       higher throughput with fewer resources); stat equal-or-better; overall 3.33x.");
}
