//! Fig. 12: resource scaling — achieved throughput per operation type as
//! the vCPU budget sweeps 16 → 512 (full scale), clients fixed per size.

use lambda_bench::*;

fn main() {
    let scale = scale_from_args();
    let full = arg_flag("full");
    let seed = arg_u64("seed", 48);
    let vcpus_sweep: Vec<u32> = if full {
        vec![16, 32, 64, 128, 256, 512]
    } else {
        vec![32, 64, 128, 256]
    };
    let clients = ((1024.0 / scale) as u32).max(32);
    let ops_per_client = if full { 3072 } else { 512 };
    let systems = [
        SystemKind::Lambda,
        SystemKind::Hops,
        SystemKind::HopsCache,
        SystemKind::InfiniCache,
        SystemKind::Ceph,
    ];
    for op in MICRO_OPS {
        let jobs: Vec<Box<dyn FnOnce() -> MicroPoint + Send>> = systems
            .iter()
            .flat_map(|&kind| {
                vcpus_sweep.iter().map(move |&v| {
                    Box::new(move || {
                        run_micro_point(
                            kind,
                            &MicroParams {
                                deployments: 10,
                                op,
                                clients,
                                vcpus: v,
                                ops_per_client,
                                store_slowdown: scale,
                                seed,
                                autoscale_limit: None,
                                concurrency_level: 4,
                            },
                        )
                    }) as Box<dyn FnOnce() -> MicroPoint + Send>
                })
            })
            .collect();
        let points = run_parallel(jobs);
        let rows: Vec<Vec<String>> = vcpus_sweep
            .iter()
            .enumerate()
            .map(|(vi, v)| {
                let mut row = vec![v.to_string()];
                for (si, _) in systems.iter().enumerate() {
                    let p = &points[si * vcpus_sweep.len() + vi];
                    row.push(fmt_ops(p.throughput * scale));
                }
                row
            })
            .collect();
        let headers: Vec<String> = std::iter::once("vcpus".to_string())
            .chain(systems.iter().map(|s| s.label().to_string()))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!("Fig. 12 [{op}] throughput (≈full ops/sec) vs vCPUs (scale 1/{scale}, {clients} clients)"),
            &headers_ref,
            &rows,
        );
    }
    println!("\npaper: at 512 vCPU λFS reaches 30.7x/9.3x/20.7x HopsFS for read/stat/ls;");
    println!("       λFS grows 34.6x/34.8x/72.1x across the sweep; writes stay store-bound.");
}
