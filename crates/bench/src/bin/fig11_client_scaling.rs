//! Fig. 11: client-driven scaling — achieved throughput per operation type
//! as the client count sweeps (8 → 1024 at full scale) with vCPUs fixed at
//! 512, for λFS, HopsFS, HopsFS+Cache, InfiniCache-style, and CephFS.

use lambda_bench::*;

fn main() {
    let scale = scale_from_args();
    let full = arg_flag("full");
    let seed = arg_u64("seed", 47);
    let vcpus = ((512.0 / scale) as u32).max(64);
    let clients: Vec<u32> = if full {
        vec![8, 16, 32, 64, 128, 256, 512, 1024]
    } else {
        vec![8, 16, 32, 64, 128, 256]
    };
    let ops_per_client = if full { 3072 } else { 512 };
    let systems = [
        SystemKind::Lambda,
        SystemKind::Hops,
        SystemKind::HopsCache,
        SystemKind::InfiniCache,
        SystemKind::Ceph,
    ];
    for op in MICRO_OPS {
        let jobs: Vec<Box<dyn FnOnce() -> MicroPoint + Send>> = systems
            .iter()
            .flat_map(|&kind| {
                clients.iter().map(move |&c| {
                    Box::new(move || {
                        run_micro_point(
                            kind,
                            &MicroParams {
                                deployments: 10,
                                op,
                                clients: c,
                                vcpus,
                                ops_per_client,
                                store_slowdown: scale,
                                seed,
                                autoscale_limit: None,
                                concurrency_level: 4,
                            },
                        )
                    }) as Box<dyn FnOnce() -> MicroPoint + Send>
                })
            })
            .collect();
        let points = run_parallel(jobs);
        let rows: Vec<Vec<String>> = clients
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let mut row = vec![c.to_string()];
                for (si, _) in systems.iter().enumerate() {
                    let p = &points[si * clients.len() + ci];
                    row.push(format!("{} ({:.0}NN)", fmt_ops(p.throughput * scale), p.peak_namenodes));
                }
                row
            })
            .collect();
        let headers: Vec<String> = std::iter::once("clients".to_string())
            .chain(systems.iter().map(|s| s.label().to_string()))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!("Fig. 11 [{op}] throughput (≈full-scale ops/sec) vs clients (scale 1/{scale})"),
            &headers_ref,
            &rows,
        );
    }
    println!("\npaper: λFS averages 28.9x/8.2x/20.5x HopsFS for read/stat/ls; create 1.49x;");
    println!("       mkdir ≈ equal; CephFS wins small scales then flattens; λFS scaled 20→74 NNs.");
}
