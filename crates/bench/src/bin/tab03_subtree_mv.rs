//! Table 3: end-to-end latency of subtree `mv` on directories of 2^18,
//! 2^19, and 2^20 files, λFS vs HopsFS.
//!
//! Scaled runs shrink the directory sizes by the scale factor (the cost is
//! linear in size); `--full` uses the paper's sizes.

use lambda_bench::*;

fn main() {
    let scale = scale_from_args();
    let seed = arg_u64("seed", 51);
    let sizes: Vec<usize> = [1usize << 18, 1 << 19, 1 << 20]
        .iter()
        .map(|s| ((*s as f64 / scale) as usize).max(1 << 12))
        .collect();
    let jobs: Vec<Box<dyn FnOnce() -> (SubtreeMvResult, SubtreeMvResult) + Send>> = sizes
        .iter()
        .map(|&size| {
            Box::new(move || {
                (
                    run_subtree_mv(SystemKind::Hops, size, seed),
                    run_subtree_mv(SystemKind::Lambda, size, seed),
                )
            }) as Box<dyn FnOnce() -> (SubtreeMvResult, SubtreeMvResult) + Send>
        })
        .collect();
    let results = run_parallel(jobs);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(h, l)| {
            vec![
                format!("{} files", h.dir_size),
                format!("{:.1}ms", h.latency_ms),
                format!("{:.1}ms", l.latency_ms),
                format!("{:.1}%", (1.0 - l.latency_ms / h.latency_ms.max(1e-9)) * 100.0),
                l.moved.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Table 3: subtree mv latency (dir sizes scaled 1/{scale})"),
        &["directory size", "hopsfs", "lambda-fs", "λ faster by", "inodes moved"],
        &rows,
    );
    println!("\npaper (full sizes): 2^18: 7511.6 vs 6455.8ms (16.35% faster); 2^19: 14184.8 vs");
    println!("       12509.2ms (13.39%); 2^20: 25137.0 vs 25220.8ms (≈equal, store-bound).");
}
