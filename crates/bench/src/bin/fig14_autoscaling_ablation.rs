//! Fig. 14: the impact of intra-deployment auto-scaling on λFS throughput —
//! enabled (unbounded), limited (≤2 instances/deployment), and disabled
//! (1 instance/deployment) — across the five micro-benchmark operations.
//! Runs λFS's agile configuration (`ConcurrencyLevel = 1`, §3.4): scaled
//! runs also raise offered concurrency 2.5× so the Fig. 6 desired-scale
//! surplus clears the *limited* cap — with the deployment floor shrunk
//! 10 → 2 by scaling, paper-proportional load would park all three modes
//! at indistinguishable instance counts.

use lambda_bench::*;

fn main() {
    let scale = scale_from_args();
    let full = arg_flag("full");
    let seed = arg_u64("seed", 50);
    let vcpus = ((512.0 / scale) as u32).max(64);
    let clients =
        if full { 1024 } else { ((1024.0 / scale * 2.5) as u32).max(64) };
    // Preserve the head-room ratio between the deployment floor and the
    // vCPU budget (10 deployments vs ~100 possible NameNodes at full
    // scale) so the ablation's effect survives scaling.
    let deployments = ((10.0 / scale).round() as u32).max(2);
    let ops_per_client = if full { 3072 } else { 512 };
    let modes: [(&str, Option<u32>); 3] =
        [("auto-scaling", None), ("limited (≤2)", Some(2)), ("disabled (1)", Some(1))];
    let jobs: Vec<Box<dyn FnOnce() -> MicroPoint + Send>> = MICRO_OPS
        .iter()
        .flat_map(|&op| {
            modes.iter().map(move |&(_, limit)| {
                Box::new(move || {
                    run_micro_point(
                        SystemKind::Lambda,
                        &MicroParams {
                            deployments,
                            op,
                            clients,
                            vcpus,
                            ops_per_client,
                            store_slowdown: scale,
                            seed,
                            autoscale_limit: limit,
                            concurrency_level: 1,
                        },
                    )
                }) as Box<dyn FnOnce() -> MicroPoint + Send>
            })
        })
        .collect();
    let points = run_parallel(jobs);
    let rows: Vec<Vec<String>> = MICRO_OPS
        .iter()
        .enumerate()
        .map(|(oi, op)| {
            let base = &points[oi * 3];
            let limited = &points[oi * 3 + 1];
            let disabled = &points[oi * 3 + 2];
            vec![
                op.to_string(),
                format!("{} ({:.0}NN)", fmt_ops(base.throughput * scale), base.peak_namenodes),
                format!("{} ({:.0}NN)", fmt_ops(limited.throughput * scale), limited.peak_namenodes),
                format!("{} ({:.0}NN)", fmt_ops(disabled.throughput * scale), disabled.peak_namenodes),
                format!("{:.2}x", base.throughput / limited.throughput.max(1e-9)),
                format!("{:.2}x", base.throughput / disabled.throughput.max(1e-9)),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 14: λFS throughput vs auto-scaling mode ({clients} clients, scale 1/{scale})"),
        &["op", "AS", "limited", "disabled", "AS/limited", "AS/disabled"],
        &rows,
    );
    println!("\npaper: read 2.85-3.17x / 3.53-3.80x (vs limited / disabled); stat similar;");
    println!("       ls 3.07x / 14.37x; writes barely move (store-bound).");
}
