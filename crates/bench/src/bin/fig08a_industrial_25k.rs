//! Fig. 8(a): the industrial (Spotify) workload at a 25,000 ops/sec base —
//! throughput over time for λFS, HopsFS, HopsFS+Cache, cost-normalized
//! HopsFS+Cache, and reduced-cache λFS, with λFS's active-NameNode count.
//! Also prints the Table 2 operation mix driving the run.

use lambda_bench::*;

fn main() {
    let scale = scale_from_args();
    let seed = arg_u64("seed", 42);
    print_table(
        "Table 2: operation mix (relative frequency)",
        &["operation", "share"],
        &[
            vec!["read file".into(), "69.22%".into()],
            vec!["stat file/dir".into(), "17.00%".into()],
            vec!["ls file/dir".into(), "9.01%".into()],
            vec!["create file".into(), "2.70%".into()],
            vec!["mv file/dir".into(), "1.30%".into()],
            vec!["delete file/dir".into(), "0.75%".into()],
            vec!["mkdirs".into(), "0.02%".into()],
        ],
    );
    let kinds = vec![
        (SystemKind::Lambda, None),
        (SystemKind::LambdaReducedCache, None),
        (SystemKind::Hops, None),
        (SystemKind::HopsCache, None),
        (SystemKind::HopsCacheCostNormalized, Some(cost_normalized_vcpus(25_000.0))),
    ];
    let jobs: Vec<_> = kinds
        .into_iter()
        .map(|(kind, vcpus)| {
            move || {
                let mut p = IndustrialParams::spotify(25_000.0, scale, seed);
                p.vcpus_override = vcpus;
                run_industrial(kind, &p)
            }
        })
        .collect();
    let reports = run_parallel_ops(jobs, |r| r.completed);

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                fmt_ops(r.avg_throughput * scale),
                fmt_ops(r.peak_sustained * scale),
                fmt_ms(r.avg_latency_ms),
                format!("{}/{}", r.completed, r.generated),
                format!("${:.3}", r.cost_total * scale),
                r.vcpus.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 8(a) summary (scale 1/{scale}; throughput/cost rescaled to full)"),
        &["system", "avg tp", "peak 15s tp", "avg latency", "done/gen", "cost(≈full)", "vcpus(scaled)"],
        &rows,
    );
    let labels: Vec<&str> = std::iter::once("offered")
        .chain(reports.iter().map(|r| r.system.as_str()))
        .collect();
    let mut series = vec![reports[0].offered_per_sec.clone()];
    series.extend(reports.iter().map(|r| r.throughput_per_sec.clone()));
    print_series("Fig. 8(a): ops/sec over time (scaled)", &labels, &series, 10);
    print_series(
        "Fig. 8(a) secondary axis: active λFS NameNodes",
        &["lambda-fs NNs"],
        &[reports[0].namenodes_per_sec.clone()],
        10,
    );
    println!("\npaper: λFS avg 45,690 ops/s @1.02ms; HopsFS 38,134 @10.58ms; H+C 45,945 @3.35ms;");
    println!("       λFS completed the 163,996 ops/s burst; peak sustained 4.3x HopsFS.");
}
