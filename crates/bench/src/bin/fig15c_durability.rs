//! Fig. 15(c) — beyond-paper: durability sweep over the WAL-backed store
//! backend. Each cell of a flush-interval × crash-rate grid runs a
//! closed-loop mixed workload against the durable backend, crashes data
//! shards on a fixed cadence, and reports how recovery behaves: recovery
//! time (the costed WAL-replay window), write amplification from the
//! LSM shadow, group-commit sync counts, and the lost-window abort rate
//! (commits whose WAL records had not yet reached a group-commit
//! boundary when their shard died).
//!
//! Every run ends in the PR 5 invariant audit — namespace↔store
//! consistency, zero leaked transactions/locks, op-count conservation,
//! plus the durable backend's post-crash shadow↔table check — and the
//! binary exits nonzero if any cell fails, so it doubles as a CI gate.
//!
//! `--smoke` shrinks the grid and the measured window; `--seed=N`
//! reseeds every run.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_bench::*;
use lambda_fs::{AuditReport, DfsService, LambdaFs, LambdaFsConfig};
use lambda_namespace::{DfsPath, FsOp};
use lambda_sim::fault::{FaultPlan, ShardOutage};
use lambda_sim::{Sim, SimDuration, SimTime};
use lambda_store::{DurabilityConfig, DurabilityStats, LsmStats};

/// One grid cell's summary.
struct Cell {
    flush_ms: f64,
    crash_label: &'static str,
    crashes_planned: usize,
    throughput: f64,
    completed: u64,
    issued: u64,
    durability: DurabilityStats,
    lsm: LsmStats,
    audit: AuditReport,
}

/// Closed-loop driver: every client keeps exactly one op in flight until
/// the measured window closes, so the run terminates by construction.
struct Driver {
    fs: Rc<LambdaFs>,
    dirs: Vec<DfsPath>,
    until: SimTime,
    fresh: RefCell<u64>,
}

impl Driver {
    fn pick(&self, sim: &mut Sim) -> FsOp {
        let dir = self.dirs[sim.rng().pick_index(self.dirs.len())].clone();
        let r = sim.rng().gen_unit();
        if r < 0.40 {
            FsOp::Stat(dir.join("file00000").expect("valid"))
        } else if r < 0.60 {
            FsOp::ReadFile(dir.join("file00001").expect("valid"))
        } else if r < 0.70 {
            FsOp::Ls(dir)
        } else {
            // A write-heavy tail keeps the WAL and the commit window busy
            // so crashes actually have in-flight commits to threaten.
            let n = {
                let mut fresh = self.fresh.borrow_mut();
                *fresh += 1;
                *fresh
            };
            FsOp::CreateFile(dir.join(&format!("dur{n:06}")).expect("valid"))
        }
    }

    fn kick(self: &Rc<Self>, sim: &mut Sim, client: usize) {
        if sim.now() >= self.until {
            return;
        }
        let op = self.pick(sim);
        let this = Rc::clone(self);
        self.fs.submit(
            sim,
            client,
            op,
            Box::new(move |sim, _result| this.kick(sim, client)),
        );
    }
}

/// Builds the crash schedule for one cell: starting at 6 s, one shard
/// outage every `spacing`, rotating over the data shards, until the
/// measured window closes. The `takeover` field is what the *in-memory*
/// backend would charge; the durable backend ignores it and costs the
/// WAL replay instead — which is exactly what this figure measures.
fn crash_plan(spacing: Option<SimDuration>, secs: u64, shards: u32) -> FaultPlan {
    let mut plan = FaultPlan::default();
    let Some(spacing) = spacing else { return plan };
    let mut at = SimTime::ZERO + SimDuration::from_secs(6);
    let end = SimTime::ZERO + SimDuration::from_secs(3 + secs);
    let mut i = 0u32;
    while at < end {
        plan.shards.push(ShardOutage {
            shard: i % shards,
            at,
            takeover: SimDuration::from_secs(30),
        });
        at += spacing;
        i += 1;
    }
    plan
}

fn run_cell(
    seed: u64,
    flush_ms: f64,
    crash_label: &'static str,
    spacing: Option<SimDuration>,
    secs: u64,
) -> Cell {
    let mut sim = Sim::new(seed);
    let config = LambdaFsConfig {
        deployments: 4,
        clients: 16,
        client_vms: 4,
        cluster_vcpus: 64,
        durability: Some(DurabilityConfig {
            flush_interval: SimDuration::from_millis_f64(flush_ms),
            ..Default::default()
        }),
        ..Default::default()
    };
    let shards = config.store.shards;
    let plan = crash_plan(spacing, secs, shards);
    let crashes_planned = plan.shards.len();
    let fs = Rc::new(LambdaFs::build(&mut sim, config));
    fs.start(&mut sim);
    fs.install_fault_plan(&mut sim, &plan);
    let root: DfsPath = "/durability".parse().expect("valid");
    let dirs = DfsService::bootstrap_tree(fs.as_ref(), &root, 16, 8);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(3));

    let driver = Rc::new(Driver {
        fs: Rc::clone(&fs),
        dirs,
        until: sim.now() + SimDuration::from_secs(secs),
        fresh: RefCell::new(0),
    });
    for client in 0..fs.client_count() {
        driver.kick(&mut sim, client);
    }
    sim.run_for(SimDuration::from_secs(secs));
    // Drain: retries resolve within max_retries × client_timeout and the
    // request TTL reaps anything still queued.
    sim.run_for(SimDuration::from_secs(45));
    fs.stop(&mut sim);
    sim.run();

    let audit = fs.audit();
    let m = fs.metrics().borrow().clone();
    Cell {
        flush_ms,
        crash_label,
        crashes_planned,
        throughput: m.mean_throughput(),
        completed: m.completed,
        issued: m.issued,
        durability: fs.db().durability_stats().expect("durable backend"),
        lsm: fs.db().lsm_stats().expect("durable backend"),
        audit,
    }
}

fn main() {
    let seed = arg_u64("seed", 53);
    let smoke = arg_flag("smoke");
    let secs = if smoke { 5 } else { 20 };
    let flush_intervals: &[f64] = if smoke { &[2.0] } else { &[0.5, 2.0, 8.0] };
    let crash_rates: &[(&'static str, Option<u64>)] = if smoke {
        &[("none", None), ("every-4s", Some(4))]
    } else {
        &[("none", None), ("every-8s", Some(8)), ("every-4s", Some(4))]
    };

    let mut cells: Vec<(f64, &'static str, Option<u64>)> = Vec::new();
    for &f in flush_intervals {
        for &(label, spacing) in crash_rates {
            cells.push((f, label, spacing));
        }
    }
    let jobs: Vec<Box<dyn FnOnce() -> Cell + Send>> = cells
        .into_iter()
        .map(|(f, label, spacing)| {
            Box::new(move || {
                run_cell(seed, f, label, spacing.map(SimDuration::from_secs), secs)
            }) as Box<dyn FnOnce() -> Cell + Send>
        })
        .collect();
    let reports = run_parallel_ops(jobs, |c| c.completed);

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|c| {
            let d = &c.durability;
            let mean_recovery_ms = if d.recoveries == 0 {
                0.0
            } else {
                d.recovery_nanos_total as f64 / d.recoveries as f64 / 1e6
            };
            vec![
                fmt_ms(c.flush_ms),
                c.crash_label.to_string(),
                fmt_ops(c.throughput),
                format!("{}/{}", c.completed, c.issued),
                format!("{}/{}", d.recoveries, c.crashes_planned),
                format!(
                    "{}/{}",
                    fmt_ms(mean_recovery_ms),
                    fmt_ms(d.recovery_nanos_max as f64 / 1e6)
                ),
                format!("{}/{}", d.lost_window_aborts, d.lost_records),
                format!("{}/{}", d.wal_appends, d.group_syncs),
                format!("{:.2}x", c.lsm.write_amplification()),
                if c.audit.is_clean() {
                    format!("clean ({})", c.audit.checks)
                } else {
                    format!("FAILED ({})", c.audit.violations.len())
                },
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 15(c): durability sweep — flush interval x crash rate (seed {seed}, {secs}s window)"
        ),
        &[
            "flush",
            "crashes",
            "avg tp",
            "done/gen",
            "recov/plan",
            "recovery avg/max",
            "lost ab/rec",
            "wal/syncs",
            "write amp",
            "audit",
        ],
        &rows,
    );

    let mut json = String::from("{\n  \"cells\": [\n");
    for (i, c) in reports.iter().enumerate() {
        let d = &c.durability;
        json.push_str(&format!(
            "    {{\"flush_ms\": {}, \"crashes\": \"{}\", \"crashes_planned\": {}, \
             \"throughput\": {:.1}, \"completed\": {}, \"issued\": {}, \
             \"recoveries\": {}, \"recovery_ms_total\": {:.3}, \"recovery_ms_max\": {:.3}, \
             \"replayed_records\": {}, \"lost_records\": {}, \"lost_window_aborts\": {}, \
             \"wal_appends\": {}, \"group_syncs\": {}, \
             \"write_amplification\": {:.4}, \"lsm_flushes\": {}, \"lsm_compactions\": {}, \
             \"audit_clean\": {}}}{}\n",
            c.flush_ms,
            c.crash_label,
            c.crashes_planned,
            c.throughput,
            c.completed,
            c.issued,
            d.recoveries,
            d.recovery_nanos_total as f64 / 1e6,
            d.recovery_nanos_max as f64 / 1e6,
            d.replayed_records,
            d.lost_records,
            d.lost_window_aborts,
            d.wal_appends,
            d.group_syncs,
            c.lsm.write_amplification(),
            c.lsm.flushes,
            c.lsm.compactions,
            c.audit.is_clean(),
            if i + 1 == reports.len() { "" } else { "," },
        ));
    }
    json.push_str(&format!("  ],\n  \"seed\": {seed},\n  \"smoke\": {smoke}\n}}\n"));
    let path = write_json(if smoke { "BENCH_durability_smoke" } else { "BENCH_durability" }, &json);
    println!("wrote {}", path.display());

    let mut failed = false;
    for c in &reports {
        if !c.audit.is_clean() {
            failed = true;
            println!("\nflush={} crashes={} audit violations:", c.flush_ms, c.crash_label);
            print!("{}", c.audit);
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nall {} cells audited clean: every crash recovered by WAL replay,",
        reports.len()
    );
    println!("lost-window commits aborted and compensated, shadow and tables agree.");
}
