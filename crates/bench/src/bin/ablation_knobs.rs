//! Beyond-paper ablations of λFS's own design knobs, as called out in
//! DESIGN.md: the HTTP-TCP replacement probability, the per-instance
//! `ConcurrencyLevel`, the cache capacity, and the coherence protocol
//! itself (unsafe ablation measuring its write overhead).

use lambda_bench::*;
use lambda_fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambda_sim::params::StoreParams;
use lambda_sim::{Sim, SimDuration};
use lambda_workload::{run_spotify, SpotifyConfig};
use std::rc::Rc;

struct Ablation {
    label: String,
    avg_tp: f64,
    avg_latency_ms: f64,
    peak_nn: f64,
    write_p50_ms: f64,
    cost: f64,
}

fn run_one(label: &str, scale: f64, seed: u64, mutate: impl Fn(&mut LambdaFsConfig)) -> Ablation {
    let mut sim = Sim::new(seed);
    let mut config = LambdaFsConfig {
        deployments: 10,
        cluster_vcpus: ((512.0 / scale) as u32).max(64),
        clients: ((1024.0 / scale) as u32).max(16),
        client_vms: 8,
        store: StoreParams::default().slowed(scale),
        ..Default::default()
    };
    mutate(&mut config);
    let fs = Rc::new(LambdaFs::build(&mut sim, config));
    fs.start(&mut sim);
    let spotify = SpotifyConfig {
        base_throughput: 25_000.0 / scale,
        duration: SimDuration::from_secs((300.0 / scale.sqrt()) as u64),
        dirs: ((2048.0 / scale) as usize).max(64),
        files_per_dir: 48,
        ..Default::default()
    };
    let dirs = fs.bootstrap_tree(&"/".parse().unwrap(), spotify.dirs, spotify.files_per_dir);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));
    let _run = run_spotify(&mut sim, Rc::clone(&fs), spotify);
    fs.stop(&mut sim);
    let metrics = fs.run_metrics();
    let mut m = metrics.borrow_mut();
    let write_p50 = m
        .latency
        .get_mut(&lambda_namespace::OpClass::Create)
        .map(|r| r.percentile(0.5).as_millis_f64())
        .unwrap_or(0.0);
    Ablation {
        label: label.to_string(),
        avg_tp: m.mean_throughput(),
        avg_latency_ms: m.mean_latency().as_millis_f64(),
        peak_nn: fs.namenode_gauge().peak(),
        write_p50_ms: write_p50,
        cost: fs.pay_meter().total(),
    }
}

fn main() {
    let scale = scale_from_args();
    let seed = arg_u64("seed", 54);
    let jobs: Vec<Box<dyn FnOnce() -> Ablation + Send>> = vec![
        Box::new(move || run_one("baseline (p=1%, CL=4, coherence on)", scale, seed, |_| {})),
        Box::new(move || run_one("replacement p=0 (no autoscale signal)", scale, seed, |c| c.http_replace_prob = 0.0)),
        Box::new(move || run_one("replacement p=5%", scale, seed, |c| c.http_replace_prob = 0.05)),
        Box::new(move || run_one("replacement p=100% (per-op HTTP)", scale, seed, |c| c.http_replace_prob = 1.0)),
        Box::new(move || run_one("ConcurrencyLevel=1", scale, seed, |c| c.concurrency_level = 1)),
        Box::new(move || run_one("ConcurrencyLevel=16", scale, seed, |c| c.concurrency_level = 16)),
        Box::new(move || run_one("reduced cache (< WSS)", scale, seed, |c| c.cache_capacity = 4_000)),
        Box::new(move || run_one("coherence OFF (unsafe)", scale, seed, |c| c.coherence_enabled = false)),
        Box::new(move || run_one("no subtree offloading", scale, seed, |c| c.subtree_offload = false)),
        Box::new(move || run_one("NDB coordinator (10ms epochs)", scale, seed, |c| {
            c.coordinator = lambda_coord::CoordinatorKind::Ndb;
        })),
    ];
    let results = run_parallel(jobs);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|a| {
            vec![
                a.label.clone(),
                fmt_ops(a.avg_tp * scale),
                fmt_ms(a.avg_latency_ms),
                format!("{:.0}", a.peak_nn),
                fmt_ms(a.write_p50_ms),
                format!("${:.4}", a.cost),
            ]
        })
        .collect();
    print_table(
        &format!("Design-knob ablations on the 25k industrial workload (scale 1/{scale})"),
        &["configuration", "avg tp (≈full)", "avg latency", "peak NNs", "create p50", "cost"],
        &rows,
    );
}
