//! Subtree-operation experiment runner behind Table 3.

use std::cell::RefCell;
use std::rc::Rc;

use lambda_baselines::{HopsFs, HopsFsConfig};
use lambda_fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambda_namespace::{DfsPath, FsOp};
use lambda_sim::params::StoreParams;
use lambda_sim::{Sim, SimDuration};

use crate::industrial::SystemKind;

/// Result of one subtree `mv`.
#[derive(Debug, Clone, Copy)]
pub struct SubtreeMvResult {
    /// Directory size in files.
    pub dir_size: usize,
    /// End-to-end latency of the `mv`, milliseconds.
    pub latency_ms: f64,
    /// Inodes the operation reported as moved.
    pub moved: u64,
}

/// Moves a flat directory of `dir_size` files and reports the end-to-end
/// latency (Table 3's measurement).
#[must_use]
pub fn run_subtree_mv(kind: SystemKind, dir_size: usize, seed: u64) -> SubtreeMvResult {
    let mut sim = Sim::new(seed);
    let store = StoreParams::default();
    let result: Rc<RefCell<Option<(f64, u64)>>> = Rc::new(RefCell::new(None));
    let src: DfsPath = "/bulk/victim".parse().expect("valid");
    let dst: DfsPath = "/bulk/renamed".parse().expect("valid");

    match kind {
        SystemKind::Lambda | SystemKind::LambdaReducedCache => {
            let fs = Rc::new(LambdaFs::build(
                &mut sim,
                LambdaFsConfig {
                    deployments: 10,
                    cluster_vcpus: 512,
                    clients: 8,
                    client_vms: 2,
                    // Subtree operations outlive ordinary request
                    // timeouts by orders of magnitude.
                    client_timeout: SimDuration::from_secs(600),
                    straggler_threshold: f64::INFINITY,
                    subtree_parallelism: 16,
                    store,
                    ..Default::default()
                },
            ));
            fs.start(&mut sim);
            bootstrap_flat_dir(fs.as_ref(), &src, dir_size);
            // Warm the deployments involved (λFS in the paper runs against
            // a warm platform; a cold start would otherwise dominate the
            // smaller directory sizes).
            let parent = src.parent().expect("non-root");
            fs.prewarm_with(&mut sim, &[src.clone(), parent, dst.clone()]);
            sim.run_for(SimDuration::from_secs(6));
            issue_mv(&mut sim, fs.as_ref(), &src, &dst, &result);
            fs.stop(&mut sim);
            sim.run_for(SimDuration::from_secs(5));
        }
        _ => {
            let fs = Rc::new(HopsFs::build(
                &mut sim,
                HopsFsConfig {
                    subtree_parallelism: 7,
                    store,
                    clients: 8,
                    ..HopsFsConfig::vanilla(512, 8)
                },
            ));
            fs.start(&mut sim);
            bootstrap_flat_dir(fs.as_ref(), &src, dir_size);
            issue_mv(&mut sim, fs.as_ref(), &src, &dst, &result);
            fs.stop(&mut sim);
            sim.run_for(SimDuration::from_secs(5));
        }
    }
    let (latency_ms, moved) = result.borrow().expect("mv completed");
    SubtreeMvResult { dir_size, latency_ms, moved }
}

fn bootstrap_flat_dir<S: DfsService>(fs: &S, dir: &DfsPath, files: usize) {
    // One directory holding `files` files, via the service's bulk loader.
    // bootstrap_tree creates dirs under a root; for a single flat dir we
    // create the parent then one directory with all the files.
    let parent = dir.parent().expect("non-root");
    let _ = fs.bootstrap_tree(&parent, 0, 0);
    // The victim directory itself, with its files, via a second call that
    // creates exactly one directory named dir00000 — then rename is
    // unnecessary: instead bootstrap under the victim path directly.
    let _ = fs.bootstrap_tree(dir, 0, 0);
    for i in 0..files {
        let f = dir.join(&format!("f{i:07}")).expect("valid");
        fs.bootstrap_file(&f);
    }
}

fn issue_mv<S: DfsService>(
    sim: &mut Sim,
    fs: &S,
    src: &DfsPath,
    dst: &DfsPath,
    result: &Rc<RefCell<Option<(f64, u64)>>>,
) {
    let started = sim.now();
    let out = Rc::clone(result);
    fs.submit_op(
        sim,
        0,
        FsOp::Mv(src.clone(), dst.clone()),
        Box::new(move |sim, r| {
            let moved = match r.expect("mv succeeded") {
                lambda_namespace::OpOutcome::Moved(n) => n,
                other => panic!("unexpected outcome {other:?}"),
            };
            let latency = sim.now().saturating_since(started).as_millis_f64();
            *out.borrow_mut() = Some((latency, moved));
        }),
    );
    // Run until the mv completes (bounded by an hour of simulated time).
    let deadline = sim.now() + SimDuration::from_secs(3600);
    while result.borrow().is_none() && sim.now() < deadline {
        if !sim.step() {
            break;
        }
    }
}
