//! # lambda-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the λFS evaluation. Each binary under `src/bin/` reproduces one
//! figure/table; `DESIGN.md` maps them (the experiment index), and
//! `EXPERIMENTS.md` records paper-vs-measured numbers.
//!
//! All binaries take `--scale=N` (default 5): load, resources, and store
//! capacity shrink together by `N`, preserving the figures' *shapes*
//! while keeping run times laptop-friendly. `--full` runs at the paper's
//! scale. `--seed=N` changes the deterministic seed.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `tab01_loc` | Table 1 (implementation inventory) |
//! | `fig08a_industrial_25k` | Fig. 8(a) + Table 2 |
//! | `fig08b_industrial_50k` | Fig. 8(b) |
//! | `fig08c_perf_per_cost` | Fig. 8(c) |
//! | `fig08d_million_scale` | beyond-paper: memory footprint at 25k–1M clients, 10M+ inodes |
//! | `fig09_cumulative_cost` | Fig. 9 |
//! | `fig10_latency_cdfs` | Fig. 10 |
//! | `fig11_client_scaling` | Fig. 11 |
//! | `fig12_resource_scaling` | Fig. 12 |
//! | `fig13_perf_per_cost_micro` | Fig. 13 |
//! | `fig14_autoscaling_ablation` | Fig. 14 |
//! | `tab03_subtree_mv` | Table 3 |
//! | `fig15_fault_tolerance` | Fig. 15 |
//! | `fig15b_chaos` | beyond-paper: deterministic chaos + invariant audit |
//! | `fig16_indexfs` | Fig. 16 |
//! | `ablation_knobs` | beyond-paper design-choice ablations |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod industrial;
pub mod loc;
pub mod micro_exp;
pub mod report;
pub mod subtree_exp;
pub mod tree_exp;

pub use industrial::{
    cost_normalized_vcpus, lambda_config, run_industrial, IndustrialParams, IndustrialReport,
    SystemKind,
};
pub use micro_exp::{run_micro_point, MicroParams, MicroPoint, MICRO_OPS};
pub use report::{
    arg_f64, arg_flag, arg_u64, arg_usize, bench_threads, fmt_events_per_sec, fmt_ms, fmt_ops,
    host_cores, print_series, print_table, run_parallel, run_parallel_ops, scale_from_args,
    write_json,
};
pub use subtree_exp::{run_subtree_mv, SubtreeMvResult};
pub use tree_exp::{run_tree_point, TreePoint, TreeSystem};
