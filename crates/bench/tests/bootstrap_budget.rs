//! Bootstrap-throughput and bulk-build-density regression tests.
//!
//! The streaming tree loader (DESIGN.md §3.7) took the fig08d 500k-client
//! bootstrap from 151 s to ~6 s (≥1.7M inodes/sec at 10M inodes). These
//! tests pin the two properties that matter going forward:
//!
//! * **throughput** — a fresh 1M-inode tree must load at ≥500k inodes/sec
//!   (measured ~4M/sec; the generous floor absorbs CI-host jitter while
//!   still failing hard on any return of per-entry path resolution);
//! * **density** — the streaming path's live heap per inode must not
//!   exceed the per-entry insert+repack path's. Contents and iteration
//!   order are pinned by the differential proptest in
//!   `crates/store/tests/bulk_build.rs`; node occupancy is only
//!   observable through the allocator, so it is pinned here.
//!
//! Wall-clock and allocator measurements both need a release build with
//! the counting global allocator, so the file only exists under
//! `--features alloc-stats` (verify.sh runs it that way in release); a
//! plain debug `cargo test` compiles it to nothing.
#![cfg(feature = "alloc-stats")]

use std::time::Instant;

use lambda_allocstats as mem;
use lambda_namespace::{interned, DfsPath, MetadataSchema};
use lambda_sim::params::StoreParams;
use lambda_sim::SimDuration;
use lambda_store::Db;

#[global_allocator]
static COUNTING_ALLOC: mem::CountingAlloc = mem::CountingAlloc;

/// Floor on fresh-tree bootstrap throughput, inodes per wall-second.
const INODES_PER_SEC_FLOOR: f64 = 500_000.0;

fn fresh_schema() -> (Db, MetadataSchema) {
    let db = Db::new(&StoreParams::default(), SimDuration::from_secs(5));
    let schema = MetadataSchema::install(&db);
    (db, schema)
}

#[test]
fn fresh_tree_bootstrap_meets_throughput_floor() {
    let (db, schema) = fresh_schema();
    // 20 409 dirs × 48 files ≈ the fig08d 100k-client point (1.0M inodes):
    // large enough that the rate is timing-jitter-free, small enough for CI.
    let (dirs, files_per_dir) = (20_409, 48);
    let before = schema.inode_count(&db);
    let t = Instant::now();
    schema.bootstrap_tree(&db, &DfsPath::root(), dirs, files_per_dir);
    let secs = t.elapsed().as_secs_f64();
    let created = schema.inode_count(&db) - before;
    assert_eq!(created, dirs * (files_per_dir + 1));
    let rate = created as f64 / secs.max(1e-9);
    assert!(
        rate >= INODES_PER_SEC_FLOOR,
        "bootstrap throughput regressed: {rate:.0} inodes/sec < floor \
         {INODES_PER_SEC_FLOOR:.0} ({created} inodes in {secs:.2}s; the streaming \
         loader measured ~4M/sec)"
    );
}

#[test]
fn streaming_path_is_at_least_as_dense_as_insert_plus_repack() {
    assert!(mem::active(), "counting allocator must be registered");
    let (dirs, files_per_dir) = (2_000, 48);
    // Intern every name up front so neither measurement pays arena growth
    // (the interner is process-global; whichever load ran first would
    // otherwise be charged for both).
    for d in 0..dirs {
        let _ = interned(&format!("dir{d:05}"));
    }
    for f in 0..files_per_dir {
        let _ = interned(&format!("file{f:05}"));
    }

    // Streaming path: fresh root, bulk_build all the way down.
    let (db_a, schema_a) = fresh_schema();
    let scope_a = mem::GLOBAL.scope();
    schema_a.bootstrap_tree(&db_a, &DfsPath::root(), dirs, files_per_dir);
    let grown_a = scope_a.grown();

    // Per-entry path: a pre-existing colliding directory forces the
    // idempotent fallback, which inserts row by row and repacks.
    let (db_b, schema_b) = fresh_schema();
    let scope_b = mem::GLOBAL.scope();
    schema_b.bootstrap_mkdir(&db_b, &DfsPath::root().join("dir00000").unwrap());
    schema_b.bootstrap_tree(&db_b, &DfsPath::root(), dirs, files_per_dir);
    let grown_b = scope_b.grown();

    assert_eq!(
        schema_a.inode_count(&db_a),
        schema_b.inode_count(&db_b),
        "both paths must build the same tree"
    );
    // 2% headroom for allocator bookkeeping jitter between the two runs.
    assert!(
        grown_a as f64 <= grown_b as f64 * 1.02,
        "bulk_build is less dense than insert+repack: streaming grew {grown_a} \
         bytes vs per-entry {grown_b} over {} inodes",
        dirs * (files_per_dir + 1),
    );
}
