//! Memory-budget regression test for the footprint overhaul.
//!
//! Registers the counting allocator as this test binary's global
//! allocator and re-measures bytes/inode on the exact fig08a λFS system
//! at scale 25 — the acceptance point of `fig08d_million_scale`. The row
//! layout was paid for in DESIGN.md §3.6 (295.0 → ~113 bytes/inode); a
//! change that drifts back above budget fails here instead of silently
//! eroding the sweep.
//!
//! The measurement needs the process-global allocator hook, so the test
//! only exists under `--features alloc-stats` (verify.sh runs it that
//! way); a plain `cargo test` compiles it to nothing.
#![cfg(feature = "alloc-stats")]

use lambda_allocstats as mem;
use lambda_bench::{lambda_config, IndustrialParams};
use lambda_fs::LambdaFs;
use lambda_namespace::DfsPath;
use lambda_sim::Sim;

#[global_allocator]
static COUNTING_ALLOC: mem::CountingAlloc = mem::CountingAlloc;

/// Budget for live-heap bytes per inode created by `bootstrap_tree` on
/// the scale-25 industrial tree (3 969 inodes). Measured 112.8 after the
/// overhaul, 295.0 before; the headroom allows allocator jitter and
/// modest row growth, while still failing long before the old layout's
/// footprint.
const BYTES_PER_INODE_BUDGET: f64 = 150.0;

#[test]
fn scale25_bytes_per_inode_stays_under_budget() {
    assert!(mem::active(), "counting allocator must be registered");
    let seed = 11;
    let params = IndustrialParams::spotify(25_000.0, 25.0, seed);
    let spotify = params.spotify_config();
    let mut sim = Sim::new(seed);
    let fs = LambdaFs::build(&mut sim, lambda_config(&params, false));
    let inodes_before = fs.schema().inode_count(fs.db());
    let scope = mem::GLOBAL.scope();
    fs.schema().bootstrap_tree(fs.db(), &DfsPath::root(), spotify.dirs, spotify.files_per_dir);
    let grown = scope.grown();
    let created = fs.schema().inode_count(fs.db()) - inodes_before;
    assert!(created > 1_000, "reference tree unexpectedly small: {created} inodes");
    let bytes_per_inode = grown as f64 / created as f64;
    assert!(
        bytes_per_inode > 0.0,
        "bootstrap allocated nothing — the counting hook is not seeing allocations"
    );
    assert!(
        bytes_per_inode < BYTES_PER_INODE_BUDGET,
        "bytes/inode regressed: {bytes_per_inode:.1} >= budget {BYTES_PER_INODE_BUDGET} \
         (the compact-row layout of DESIGN.md §3.6 was 112.8)"
    );
}
