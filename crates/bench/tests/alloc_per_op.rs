//! Per-op allocation regression gate for the store's lean-read paths.
//!
//! The arena-backed store engine exists so that steady-state metadata
//! reads do no heap work: point gets walk arena indices, and listings
//! fold rows through a visitor instead of cloning them into a `Vec`
//! (DESIGN.md §3.8). This test pins that property with the counting
//! allocator's *event* counter ([`MemScope::allocs`]): over thousands of
//! lean-read operations against the fig08d 250k-inode tree, the store
//! layer must allocate **zero** times. A byte-delta pin would miss
//! transient alloc+free pairs; the event counter does not.
//!
//! One lean read here is what a warmed `ReadFile`/`Stat` asks of the
//! store: resolve `/dirXXXXX/fileYYYYY` by component (two children-index
//! probes, two inode fetches), plus the listing-shaped visitor scan and
//! range count the directory paths use.
//!
//! Like `bootstrap_budget.rs`, the file only exists under
//! `--features alloc-stats` (verify.sh runs it in release); a plain
//! `cargo test` compiles it to nothing.
//!
//! [`MemScope::allocs`]: lambda_allocstats::MemScope::allocs
#![cfg(feature = "alloc-stats")]

use lambda_allocstats as mem;
use lambda_namespace::{interned, DfsPath, MetadataSchema, ROOT_INODE_ID};
use lambda_sim::params::StoreParams;
use lambda_sim::{SimDuration, SimRng};
use lambda_store::{Db, NameKey};

#[global_allocator]
static COUNTING_ALLOC: mem::CountingAlloc = mem::CountingAlloc;

/// The fig08d 250k-inode point: 5103 directories of 48 files.
const DIRS: usize = 5_103;
const FILES_PER_DIR: usize = 48;
/// Lean-read ops measured under the zero-alloc scope.
const OPS: usize = 10_000;

#[test]
fn lean_reads_do_not_allocate_at_250k_inodes() {
    assert!(mem::active(), "counting allocator must be registered");
    let db = Db::new(&StoreParams::default(), SimDuration::from_secs(5));
    let schema = MetadataSchema::install(&db);
    schema.bootstrap_tree(&db, &DfsPath::root(), DIRS, FILES_PER_DIR);

    // Pre-intern the probe keys: the interner is shared namespace
    // infrastructure, not per-op work.
    let dir_keys: Vec<NameKey> =
        (0..DIRS).map(|d| NameKey::new(interned(&format!("dir{d:05}")))).collect();
    let file_keys: Vec<NameKey> =
        (0..FILES_PER_DIR).map(|f| NameKey::new(interned(&format!("file{f:05}")))).collect();

    let mut rng = SimRng::new(0x250_0000);
    let lean_read = |rng: &mut SimRng, rows_seen: &mut usize| {
        let dname = dir_keys[rng.pick_index(dir_keys.len())];
        let fname = file_keys[rng.pick_index(file_keys.len())];
        // Component-wise resolution, exactly as `peek_chain` probes.
        let dir_id = db.peek(schema.children, &(ROOT_INODE_ID, dname)).expect("dir exists");
        let dir = db.peek(schema.inodes, &dir_id).expect("dir inode");
        assert!(dir.is_dir());
        let file_id = db.peek(schema.children, &(dir_id, fname)).expect("file exists");
        let file = db.peek(schema.inodes, &file_id).expect("file inode");
        assert_eq!(file.parent, dir_id);
        // The listing shape: visitor scan + header-only count, no `Vec`.
        let listing = (dir_id, NameKey::MIN)..(dir_id + 1, NameKey::MIN);
        let mut in_dir = 0usize;
        db.peek_range_with(schema.children, listing.clone(), |_, _| in_dir += 1);
        assert_eq!(in_dir, FILES_PER_DIR);
        assert_eq!(db.peek_count_range(schema.children, listing), FILES_PER_DIR);
        *rows_seen += in_dir;
    };

    // Warm once outside the scope (first-touch effects, if any, are not
    // per-op costs).
    let mut rows_seen = 0usize;
    for _ in 0..16 {
        lean_read(&mut rng, &mut rows_seen);
    }

    let scope = mem::GLOBAL.scope();
    for _ in 0..OPS {
        lean_read(&mut rng, &mut rows_seen);
    }
    let allocs = scope.allocs();
    assert_eq!(
        allocs, 0,
        "lean reads allocated: {allocs} allocation events over {OPS} ops \
         (point gets and visitor scans must stay heap-free)"
    );
    assert!(rows_seen > 0);
}
