//! Criterion benchmarks of the full protocol stack: wall-clock cost of
//! simulating end-to-end λFS operations (how much real time one simulated
//! metadata operation costs the harness), plus a scaled-down industrial
//! slice — the figure-regeneration workhorse.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, SamplingMode};
use lambda_fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambda_namespace::FsOp;
use lambda_sim::params::StoreParams;
use lambda_sim::{Sim, SimDuration};
use lambda_workload::{run_spotify, SpotifyConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// A warmed λFS system ready to serve operations.
fn warmed() -> (Sim, Rc<LambdaFs>, Vec<lambda_namespace::DfsPath>) {
    let mut sim = Sim::new(5);
    let fs = Rc::new(LambdaFs::build(
        &mut sim,
        LambdaFsConfig { deployments: 4, clients: 8, client_vms: 2, ..Default::default() },
    ));
    fs.start(&mut sim);
    let dirs = fs.bootstrap_tree(&"/".parse().unwrap(), 16, 8);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));
    (sim, fs, dirs)
}

fn run_one(sim: &mut Sim, fs: &LambdaFs, op: FsOp) {
    let done = Rc::new(RefCell::new(false));
    let d = Rc::clone(&done);
    fs.submit(sim, 0, op, Box::new(move |_s, r| {
        r.unwrap();
        *d.borrow_mut() = true;
    }));
    while !*done.borrow() {
        assert!(sim.step());
    }
}

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("lambda_fs_ops");
    g.sampling_mode(SamplingMode::Flat).sample_size(20);
    g.bench_function("cached_read", |b| {
        let (mut sim, fs, dirs) = warmed();
        let path = dirs[0].join("file00000").unwrap();
        run_one(&mut sim, &fs, FsOp::ReadFile(path.clone())); // fill
        b.iter(|| run_one(&mut sim, &fs, FsOp::ReadFile(path.clone())));
    });
    g.bench_function("create_with_coherence", |b| {
        let (mut sim, fs, dirs) = warmed();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            run_one(&mut sim, &fs, FsOp::CreateFile(dirs[0].join(&format!("b{i}")).unwrap()));
        });
    });
    g.bench_function("ls_cached_listing", |b| {
        let (mut sim, fs, dirs) = warmed();
        run_one(&mut sim, &fs, FsOp::Ls(dirs[1].clone())); // fill
        b.iter(|| run_one(&mut sim, &fs, FsOp::Ls(dirs[1].clone())));
    });
    g.finish();
}

fn bench_industrial_slice(c: &mut Criterion) {
    let mut g = c.benchmark_group("industrial_slice");
    g.sampling_mode(SamplingMode::Flat).sample_size(10);
    g.bench_function("spotify_10s_at_500ops", |b| {
        b.iter_batched(
            || {
                let mut sim = Sim::new(9);
                let fs = Rc::new(LambdaFs::build(
                    &mut sim,
                    LambdaFsConfig {
                        deployments: 4,
                        clients: 16,
                        client_vms: 2,
                        store: StoreParams::default().slowed(10.0),
                        ..Default::default()
                    },
                ));
                fs.start(&mut sim);
                let cfg = SpotifyConfig {
                    base_throughput: 500.0,
                    duration: SimDuration::from_secs(10),
                    dirs: 32,
                    files_per_dir: 16,
                    ..Default::default()
                };
                let dirs = fs.bootstrap_tree(&"/".parse().unwrap(), cfg.dirs, cfg.files_per_dir);
                fs.prewarm_with(&mut sim, &dirs);
                sim.run_for(SimDuration::from_secs(8));
                (sim, fs, cfg)
            },
            |(mut sim, fs, cfg)| {
                let run = run_spotify(&mut sim, Rc::clone(&fs), cfg);
                fs.stop(&mut sim);
                assert!(run.generated > 0);
                run.generated
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_ops, bench_industrial_slice);
criterion_main!(benches);
