//! Criterion micro-benchmarks of the substrate data structures: the DES
//! kernel, queueing stations, the metadata-cache trie, the namespace
//! partitioner, the LSM tree, and the transactional store.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lambda_lsm::{LsmConfig, LsmTree};
use lambda_namespace::{DfsPath, Inode, MetadataCache, Partitioner};
use lambda_sim::baseline::{BoxedSim, BoxedStation};
use lambda_sim::params::StoreParams;
use lambda_sim::{Sim, SimDuration, Station};
use lambda_store::{Db, LockMode};
use std::hint::black_box;

fn bench_des_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.bench_function("schedule_and_run_10k_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            for i in 0..10_000u64 {
                sim.schedule(SimDuration::from_nanos(i * 100), move |_| {});
            }
            sim.run();
            black_box(sim.events_executed())
        });
    });
    // The preserved boxed-closure engine, for an at-a-glance slab-vs-boxed
    // comparison in the same Criterion run (bench_kernel measures this
    // rigorously and records it in results/BENCH_kernel.json).
    g.bench_function("schedule_and_run_10k_events_boxed_baseline", |b| {
        b.iter(|| {
            let mut sim = BoxedSim::new(1);
            for i in 0..10_000u64 {
                sim.schedule(SimDuration::from_nanos(i * 100), move |_| {});
            }
            sim.run();
            black_box(sim.events_executed())
        });
    });
    g.bench_function("station_10k_jobs", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let station = Station::new("s", 8);
            for _ in 0..10_000 {
                Station::submit(&station, &mut sim, SimDuration::from_micros(100), |_| {});
            }
            sim.run();
            let completions = station.borrow().stats().completions;
            black_box(completions)
        });
    });
    g.bench_function("station_10k_jobs_boxed_baseline", |b| {
        b.iter(|| {
            let mut sim = BoxedSim::new(1);
            let station = BoxedStation::new(8);
            for _ in 0..10_000 {
                BoxedStation::submit(&station, &mut sim, SimDuration::from_micros(100), |_| {});
            }
            sim.run();
            let completions = station.borrow().stats().completions;
            black_box(completions)
        });
    });
    g.finish();
}

fn chain(depth: u64, base: u64) -> (DfsPath, Vec<Inode>) {
    let mut path = DfsPath::root();
    let mut inodes = vec![Inode::root()];
    let mut parent = 1;
    for d in 0..depth {
        path = path.join(&format!("c{base}_{d}")).unwrap();
        let id = base * 100 + d + 2;
        inodes.push(Inode::directory(id, parent, format!("c{base}_{d}")));
        parent = id;
    }
    (path, inodes)
}

fn bench_cache_trie(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_trie");
    // Pre-populated cache of 10k 3-deep chains.
    let build = || {
        let mut cache = MetadataCache::new(1_000_000);
        let mut paths = Vec::new();
        for i in 0..10_000u64 {
            let (p, ch) = chain(3, i);
            cache.insert_chain(&p, &ch);
            paths.push(p);
        }
        (cache, paths)
    };
    let (mut cache, paths) = build();
    g.bench_function("lookup_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % paths.len();
            black_box(cache.lookup(&paths[i]))
        });
    });
    let missing: DfsPath = "/does/not/exist".parse().unwrap();
    g.bench_function("lookup_miss", |b| {
        b.iter(|| black_box(cache.lookup(&missing)));
    });
    g.bench_function("insert_chain", |b| {
        let mut i = 0;
        b.iter_batched(
            || {
                i += 1;
                chain(3, 20_000 + i)
            },
            |(p, ch)| cache.insert_chain(&p, &ch),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("invalidate_and_refill", |b| {
        let (p, ch) = chain(3, 5);
        let id = ch.last().unwrap().id;
        b.iter(|| {
            cache.invalidate_inode(id);
            cache.insert_chain(&p, &ch);
        });
    });
    g.bench_function("prefix_invalidate_subtree_of_100", |b| {
        b.iter_batched(
            || {
                let mut cache = MetadataCache::new(1_000_000);
                for i in 0..100u64 {
                    let (p, ch) = chain(3, i);
                    cache.insert_chain(&p, &ch);
                }
                cache
            },
            |mut cache| {
                black_box(cache.invalidate_prefix(&DfsPath::root()));
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let ring = Partitioner::new(10);
    let paths: Vec<DfsPath> =
        (0..1000).map(|i| format!("/dir{i:05}/file").parse().unwrap()).collect();
    c.bench_function("partitioner/deployment_for_path", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % paths.len();
            black_box(ring.deployment_for_path(&paths[i]))
        });
    });
}

fn bench_lsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsm");
    g.bench_function("put", |b| {
        let mut tree = LsmTree::new(LsmConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tree.put(format!("key{i:012}").as_bytes(), b"value-payload-64-bytes");
        });
    });
    g.bench_function("get_warm", |b| {
        let mut tree = LsmTree::new(LsmConfig::default());
        for i in 0..50_000u64 {
            tree.put(format!("key{i:012}").as_bytes(), b"value-payload");
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 50_000;
            black_box(tree.get(format!("key{i:012}").as_bytes()))
        });
    });
    g.bench_function("scan_100", |b| {
        let mut tree = LsmTree::new(LsmConfig::default());
        for i in 0..10_000u64 {
            tree.put(format!("key{i:012}").as_bytes(), b"v");
        }
        b.iter(|| black_box(tree.scan(b"key000000001000", b"key000000001100")));
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    c.bench_function("store/locked_read_write_commit", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new(1);
                let db = Db::new(&StoreParams::default(), SimDuration::from_secs(5));
                let t = db.create_table::<u64, u64>("t");
                (sim, db, t)
            },
            |(mut sim, db, t)| {
                for i in 0..100u64 {
                    let txn = db.begin();
                    let db2 = db.clone();
                    db.read_locked(&mut sim, txn, t, vec![i], LockMode::Exclusive, move |sim, r| {
                        r.unwrap();
                        db2.upsert(txn, t, i, i).unwrap();
                        db2.commit(sim, txn, |_s, r| r.unwrap());
                    });
                }
                sim.run();
                black_box(db.stats().commits)
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_des_kernel,
    bench_cache_trie,
    bench_partitioner,
    bench_lsm,
    bench_store
);
criterion_main!(benches);
