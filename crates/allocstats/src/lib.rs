//! # lambda-allocstats
//!
//! A counting global allocator for byte-accurate memory accounting in the
//! memory-footprint benches (`fig08d_million_scale` and the
//! `bytes_per_inode` regression gate).
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and maintains process-wide
//! live/peak byte counters in [`GLOBAL`]. It is *not* registered anywhere in
//! library code: a binary (or integration-test crate) opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: lambda_allocstats::CountingAlloc = lambda_allocstats::CountingAlloc;
//! ```
//!
//! so the accounting overhead (two relaxed atomic RMWs per allocation) is
//! only ever paid by binaries that asked for it. In `lambda-bench` the
//! registration sits behind the `alloc-stats` cargo feature.
//!
//! The counters track **requested** bytes (`Layout::size`), not allocator
//! bucket sizes — the quantity the row-layout arithmetic in DESIGN.md §3.6
//! predicts. All accounting logic lives in [`Counters`], which is plain safe
//! code and unit-testable without touching the real global allocator; the
//! single `unsafe` surface is the delegating [`GlobalAlloc`] impl.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live/peak byte counters. The process-wide instance is [`GLOBAL`];
/// tests construct their own to exercise the accounting deterministically.
#[derive(Debug)]
pub struct Counters {
    live: AtomicU64,
    peak: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl Counters {
    /// A zeroed counter set.
    #[must_use]
    pub const fn new() -> Self {
        Counters {
            live: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
        }
    }

    /// Records an allocation of `bytes`.
    pub fn note_alloc(&self, bytes: u64) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    /// Records a deallocation of `bytes`.
    pub fn note_dealloc(&self, bytes: u64) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Records a reallocation from `old` to `new` bytes.
    pub fn note_realloc(&self, old: u64, new: u64) {
        if new >= old {
            self.note_alloc(new - old);
            // One logical event, not an alloc+free pair.
            self.frees.fetch_add(1, Ordering::Relaxed);
        } else {
            self.note_dealloc(old - new);
            self.allocs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Currently live (allocated, not yet freed) bytes.
    #[must_use]
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Counters::live`] since process start (or the
    /// last [`Counters::reset_peak`]).
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live level, so a measurement window
    /// observes only its own high-water mark.
    pub fn reset_peak(&self) {
        self.peak.store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of allocation events recorded.
    #[must_use]
    pub fn alloc_count(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Number of deallocation events recorded.
    #[must_use]
    pub fn free_count(&self) -> u64 {
        self.frees.load(Ordering::Relaxed)
    }

    /// Opens a measurement scope anchored at the current live level.
    /// Scopes nest freely — each one only remembers its own baseline.
    #[must_use]
    pub fn scope(&self) -> MemScope<'_> {
        MemScope { counters: self, base_live: self.live() }
    }
}

impl Default for Counters {
    fn default() -> Self {
        Self::new()
    }
}

/// A measurement window over a [`Counters`]: bytes that became live since
/// the scope opened. Purely observational — dropping a scope changes
/// nothing.
#[derive(Debug, Clone, Copy)]
pub struct MemScope<'a> {
    counters: &'a Counters,
    base_live: u64,
}

impl MemScope<'_> {
    /// Net bytes allocated (and still live) since the scope opened.
    /// Saturates at zero if the scope freed more than it allocated.
    #[must_use]
    pub fn grown(&self) -> u64 {
        self.counters.live().saturating_sub(self.base_live)
    }

    /// Signed net live-byte delta since the scope opened.
    #[must_use]
    pub fn delta(&self) -> i64 {
        self.counters.live() as i64 - self.base_live as i64
    }

    /// The live level when this scope opened.
    #[must_use]
    pub fn baseline(&self) -> u64 {
        self.base_live
    }
}

/// The process-wide counter set fed by [`CountingAlloc`].
pub static GLOBAL: Counters = Counters::new();

/// Currently live heap bytes (zero unless a binary registered
/// [`CountingAlloc`]).
#[must_use]
pub fn live_bytes() -> u64 {
    GLOBAL.live()
}

/// Peak live heap bytes since process start or the last
/// [`reset_peak`].
#[must_use]
pub fn peak_bytes() -> u64 {
    GLOBAL.peak()
}

/// Resets the process-wide peak to the current live level.
pub fn reset_peak() {
    GLOBAL.reset_peak();
}

/// Whether a [`CountingAlloc`] is actually feeding [`GLOBAL`]: true once
/// any allocation has been recorded (the runtime allocates long before
/// `main`, so under a registered counter this is never zero).
#[must_use]
pub fn active() -> bool {
    GLOBAL.alloc_count() > 0
}

/// The counting allocator: [`System`] plus [`GLOBAL`] accounting. Register
/// it with `#[global_allocator]` in a binary to activate the counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

// The only unsafe in the crate: a pass-through to `System` with the same
// contracts the caller already promised `GlobalAlloc`.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            GLOBAL.note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        GLOBAL.note_dealloc(layout.size() as u64);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            GLOBAL.note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            GLOBAL.note_realloc(layout.size() as u64, new_size as u64);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_dealloc_track_live_bytes() {
        let c = Counters::new();
        c.note_alloc(100);
        c.note_alloc(50);
        assert_eq!(c.live(), 150);
        c.note_dealloc(100);
        assert_eq!(c.live(), 50);
        c.note_dealloc(50);
        assert_eq!(c.live(), 0);
        assert_eq!(c.alloc_count(), 2);
        assert_eq!(c.free_count(), 2);
    }

    #[test]
    fn peak_is_a_high_water_mark() {
        let c = Counters::new();
        c.note_alloc(100);
        assert_eq!(c.peak(), 100);
        c.note_dealloc(100);
        // Freeing never lowers the peak.
        assert_eq!(c.peak(), 100);
        c.note_alloc(60);
        assert_eq!(c.peak(), 100);
        c.note_alloc(60);
        assert_eq!(c.peak(), 120);
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let c = Counters::new();
        c.note_alloc(500);
        c.note_dealloc(400);
        assert_eq!(c.peak(), 500);
        c.reset_peak();
        assert_eq!(c.peak(), 100);
        c.note_alloc(10);
        assert_eq!(c.peak(), 110);
    }

    #[test]
    fn realloc_accounts_the_delta_both_ways() {
        let c = Counters::new();
        c.note_alloc(64);
        c.note_realloc(64, 256);
        assert_eq!(c.live(), 256);
        assert_eq!(c.peak(), 256);
        c.note_realloc(256, 32);
        assert_eq!(c.live(), 32);
        assert_eq!(c.peak(), 256);
    }

    #[test]
    fn nested_scopes_each_keep_their_own_baseline() {
        let c = Counters::new();
        let outer = c.scope();
        c.note_alloc(50);
        let inner = c.scope();
        c.note_alloc(25);
        assert_eq!(inner.grown(), 25);
        assert_eq!(outer.grown(), 75);
        c.note_dealloc(25);
        assert_eq!(inner.grown(), 0);
        assert_eq!(inner.delta(), 0);
        assert_eq!(outer.grown(), 50);
        // The peak survives the inner scope's churn.
        assert_eq!(c.peak(), 75);
    }

    #[test]
    fn scope_delta_can_go_negative_grown_saturates() {
        let c = Counters::new();
        c.note_alloc(100);
        let s = c.scope();
        c.note_dealloc(40);
        assert_eq!(s.delta(), -40);
        assert_eq!(s.grown(), 0);
        assert_eq!(s.baseline(), 100);
    }

    #[test]
    fn global_counters_are_reachable() {
        // No CountingAlloc is registered in this test binary, so the
        // global counters are silent — but the accessors must work.
        let live = live_bytes();
        let peak = peak_bytes();
        assert!(peak >= live || peak == 0);
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
    }
}
