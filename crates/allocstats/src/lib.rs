//! # lambda-allocstats
//!
//! A counting global allocator for byte-accurate memory accounting in the
//! memory-footprint benches (`fig08d_million_scale` and the
//! `bytes_per_inode` regression gate).
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and maintains process-wide
//! live/peak byte counters in [`GLOBAL`]. It is *not* registered anywhere in
//! library code: a binary (or integration-test crate) opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: lambda_allocstats::CountingAlloc = lambda_allocstats::CountingAlloc;
//! ```
//!
//! so the accounting overhead (two relaxed atomic RMWs per allocation) is
//! only ever paid by binaries that asked for it. In `lambda-bench` the
//! registration sits behind the `alloc-stats` cargo feature.
//!
//! The counters track **requested** bytes (`Layout::size`), not allocator
//! bucket sizes — the quantity the row-layout arithmetic in DESIGN.md §3.6
//! predicts. All accounting logic lives in [`Counters`], which is plain safe
//! code and unit-testable without touching the real global allocator; the
//! `unsafe` surface is the delegating [`GlobalAlloc`] impl plus the raw
//! `madvise` syscall that asks the kernel for huge pages under the store's
//! multi-hundred-MB arena tables (`advise_huge`).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live/peak byte counters. The process-wide instance is [`GLOBAL`];
/// tests construct their own to exercise the accounting deterministically.
#[derive(Debug)]
pub struct Counters {
    live: AtomicU64,
    peak: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl Counters {
    /// A zeroed counter set.
    #[must_use]
    pub const fn new() -> Self {
        Counters {
            live: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
        }
    }

    /// Records an allocation of `bytes`.
    pub fn note_alloc(&self, bytes: u64) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    /// Records a deallocation of `bytes`.
    pub fn note_dealloc(&self, bytes: u64) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Records a reallocation from `old` to `new` bytes.
    pub fn note_realloc(&self, old: u64, new: u64) {
        if new >= old {
            self.note_alloc(new - old);
            // One logical event, not an alloc+free pair.
            self.frees.fetch_add(1, Ordering::Relaxed);
        } else {
            self.note_dealloc(old - new);
            self.allocs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Currently live (allocated, not yet freed) bytes.
    #[must_use]
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Counters::live`] since process start (or the
    /// last [`Counters::reset_peak`]).
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live level, so a measurement window
    /// observes only its own high-water mark.
    pub fn reset_peak(&self) {
        self.peak.store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of allocation events recorded.
    #[must_use]
    pub fn alloc_count(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Number of deallocation events recorded.
    #[must_use]
    pub fn free_count(&self) -> u64 {
        self.frees.load(Ordering::Relaxed)
    }

    /// Opens a measurement scope anchored at the current live level.
    /// Scopes nest freely — each one only remembers its own baseline.
    #[must_use]
    pub fn scope(&self) -> MemScope<'_> {
        MemScope { counters: self, base_live: self.live(), base_allocs: self.alloc_count() }
    }
}

impl Default for Counters {
    fn default() -> Self {
        Self::new()
    }
}

/// A measurement window over a [`Counters`]: bytes that became live since
/// the scope opened. Purely observational — dropping a scope changes
/// nothing.
#[derive(Debug, Clone, Copy)]
pub struct MemScope<'a> {
    counters: &'a Counters,
    base_live: u64,
    base_allocs: u64,
}

impl MemScope<'_> {
    /// Net bytes allocated (and still live) since the scope opened.
    /// Saturates at zero if the scope freed more than it allocated.
    #[must_use]
    pub fn grown(&self) -> u64 {
        self.counters.live().saturating_sub(self.base_live)
    }

    /// Signed net live-byte delta since the scope opened.
    #[must_use]
    pub fn delta(&self) -> i64 {
        self.counters.live() as i64 - self.base_live as i64
    }

    /// The live level when this scope opened.
    #[must_use]
    pub fn baseline(&self) -> u64 {
        self.base_live
    }

    /// Allocation *events* since the scope opened (reallocs count once).
    ///
    /// This is the per-op allocation counter behind the zero-alloc
    /// regression gates: unlike byte deltas, which an alloc+free pair
    /// cancels out of, the event count catches every transient
    /// allocation on a path that claims to make none.
    #[must_use]
    pub fn allocs(&self) -> u64 {
        self.counters.alloc_count() - self.base_allocs
    }
}

/// The process-wide counter set fed by [`CountingAlloc`].
pub static GLOBAL: Counters = Counters::new();

/// Currently live heap bytes (zero unless a binary registered
/// [`CountingAlloc`]).
#[must_use]
pub fn live_bytes() -> u64 {
    GLOBAL.live()
}

/// Peak live heap bytes since process start or the last
/// [`reset_peak`].
#[must_use]
pub fn peak_bytes() -> u64 {
    GLOBAL.peak()
}

/// Resets the process-wide peak to the current live level.
pub fn reset_peak() {
    GLOBAL.reset_peak();
}

/// Whether a [`CountingAlloc`] is actually feeding [`GLOBAL`]: true once
/// any allocation has been recorded (the runtime allocates long before
/// `main`, so under a registered counter this is never zero).
#[must_use]
pub fn active() -> bool {
    GLOBAL.alloc_count() > 0
}

/// Allocations at least this large get `MADV_HUGEPAGE` advice. 2 MiB is
/// the x86-64 huge-page size; anything smaller cannot contain one.
const HUGE_THRESHOLD: usize = 2 << 20;

/// Advises the kernel to back `[ptr, ptr + len)` with transparent huge
/// pages (`MADV_HUGEPAGE`), on hosts where THP is in `madvise` mode.
///
/// The store's arena tables are a handful of multi-hundred-MB buffers; on
/// 4 KiB pages a 10M-row table costs a dTLB miss on nearly every descent
/// level, and huge pages collapse that ~512×. The build has no `libc`, so
/// the one-line `madvise` call is a raw syscall; it is advisory — any
/// failure (foreign kernel, THP disabled) changes nothing.
///
/// Container runtimes commonly start processes with `PR_SET_THP_DISABLE`
/// set, which silently voids every `MADV_HUGEPAGE`; the first call here
/// clears that per-process flag once (`prctl(PR_SET_THP_DISABLE, 0)` —
/// unprivileged, affects only this process).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[allow(unsafe_code)]
fn advise_huge(ptr: *mut u8, len: usize) {
    use std::sync::atomic::{AtomicBool, Ordering};
    const PAGE: usize = 4096;
    const MADV_HUGEPAGE: usize = 14;
    const SYS_MADVISE: usize = 28;
    const SYS_PRCTL: usize = 157;
    const PR_SET_THP_DISABLE: usize = 41;

    // SAFETY for both syscalls below: madvise on a range inside an
    // allocation this process owns never unmaps or alters contents, and
    // prctl(PR_SET_THP_DISABLE, 0) only clears this process's THP opt-out;
    // both are advisory and their failure changes nothing.
    static THP_ENABLED: AtomicBool = AtomicBool::new(false);
    if !THP_ENABLED.swap(true, Ordering::Relaxed) {
        // prctl demands args 3..5 be zero, so all six registers are pinned.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_PRCTL => _,
                in("rdi") PR_SET_THP_DISABLE,
                in("rsi") 0usize,
                in("rdx") 0usize,
                in("r10") 0usize,
                in("r8") 0usize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
    }

    // madvise wants a page-aligned start: round in to the aligned interior
    // of the block (malloc headers may offset it).
    let addr = (ptr as usize).next_multiple_of(PAGE);
    let len = len.saturating_sub(addr - ptr as usize) & !(PAGE - 1);
    if len == 0 {
        return;
    }
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MADVISE => _,
            in("rdi") addr,
            in("rsi") len,
            in("rdx") MADV_HUGEPAGE,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn advise_huge(_ptr: *mut u8, _len: usize) {}

/// Best-effort synchronous collapse of every large anonymous mapping into
/// huge pages (`MADV_COLLAPSE`, Linux 6.1+). Returns the number of bytes
/// the kernel accepted for collapse (0 where unsupported).
///
/// [`advise_huge`] only affects pages faulted *after* the advice; a `Vec`
/// grown by doubling keeps every page touched before its final `realloc`
/// at 4 KiB (`mremap` moves small pages as small pages), which caps THP
/// coverage of the arenas near 50%. Calling this once after a bulk build
/// collapses the already-faulted remainder in place. Failures (old
/// kernel, fragmented memory) leave the mapping as it was.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[allow(unsafe_code)]
pub fn collapse_large_anon_mappings() -> usize {
    const SYS_MADVISE: usize = 28;
    const MADV_COLLAPSE: usize = 25;
    let Ok(maps) = std::fs::read_to_string("/proc/self/maps") else {
        return 0;
    };
    let mut collapsed = 0usize;
    for line in maps.lines() {
        // "start-end perms offset dev inode [path]" — large private
        // writable anonymous regions only (the heap and glibc's mmap'd
        // big blocks; leave files, stacks, and guard pages alone).
        let mut fields = line.split_ascii_whitespace();
        let (Some(range), Some(perms)) = (fields.next(), fields.next()) else {
            continue;
        };
        let path = fields.nth(3);
        if perms != "rw-p" || path.is_some_and(|p| p != "[heap]") {
            continue;
        }
        let Some((lo, hi)) = range.split_once('-') else {
            continue;
        };
        let (Ok(lo), Ok(hi)) =
            (usize::from_str_radix(lo, 16), usize::from_str_radix(hi, 16))
        else {
            continue;
        };
        let len = hi.saturating_sub(lo);
        if len < HUGE_THRESHOLD {
            continue;
        }
        // SAFETY: MADV_COLLAPSE on a mapping this process owns; it only
        // changes the page-table granularity, never contents or validity.
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MADVISE => ret,
                in("rdi") lo,
                in("rsi") len,
                in("rdx") MADV_COLLAPSE,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if ret == 0 {
            collapsed += len;
        }
    }
    collapsed
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn collapse_large_anon_mappings() -> usize {
    0
}

/// The counting allocator: [`System`] plus [`GLOBAL`] accounting, plus
/// huge-page advice for arena-scale blocks (see [`advise_huge`]). Register
/// it with `#[global_allocator]` in a binary to activate both.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

// A pass-through to `System` with the same contracts the caller already
// promised `GlobalAlloc`.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            GLOBAL.note_alloc(layout.size() as u64);
            if layout.size() >= HUGE_THRESHOLD {
                advise_huge(p, layout.size());
            }
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        GLOBAL.note_dealloc(layout.size() as u64);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            GLOBAL.note_alloc(layout.size() as u64);
            if layout.size() >= HUGE_THRESHOLD {
                advise_huge(p, layout.size());
            }
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            GLOBAL.note_realloc(layout.size() as u64, new_size as u64);
            if new_size >= HUGE_THRESHOLD {
                advise_huge(p, new_size);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_dealloc_track_live_bytes() {
        let c = Counters::new();
        c.note_alloc(100);
        c.note_alloc(50);
        assert_eq!(c.live(), 150);
        c.note_dealloc(100);
        assert_eq!(c.live(), 50);
        c.note_dealloc(50);
        assert_eq!(c.live(), 0);
        assert_eq!(c.alloc_count(), 2);
        assert_eq!(c.free_count(), 2);
    }

    #[test]
    fn peak_is_a_high_water_mark() {
        let c = Counters::new();
        c.note_alloc(100);
        assert_eq!(c.peak(), 100);
        c.note_dealloc(100);
        // Freeing never lowers the peak.
        assert_eq!(c.peak(), 100);
        c.note_alloc(60);
        assert_eq!(c.peak(), 100);
        c.note_alloc(60);
        assert_eq!(c.peak(), 120);
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let c = Counters::new();
        c.note_alloc(500);
        c.note_dealloc(400);
        assert_eq!(c.peak(), 500);
        c.reset_peak();
        assert_eq!(c.peak(), 100);
        c.note_alloc(10);
        assert_eq!(c.peak(), 110);
    }

    #[test]
    fn realloc_accounts_the_delta_both_ways() {
        let c = Counters::new();
        c.note_alloc(64);
        c.note_realloc(64, 256);
        assert_eq!(c.live(), 256);
        assert_eq!(c.peak(), 256);
        c.note_realloc(256, 32);
        assert_eq!(c.live(), 32);
        assert_eq!(c.peak(), 256);
    }

    #[test]
    fn nested_scopes_each_keep_their_own_baseline() {
        let c = Counters::new();
        let outer = c.scope();
        c.note_alloc(50);
        let inner = c.scope();
        c.note_alloc(25);
        assert_eq!(inner.grown(), 25);
        assert_eq!(outer.grown(), 75);
        c.note_dealloc(25);
        assert_eq!(inner.grown(), 0);
        assert_eq!(inner.delta(), 0);
        assert_eq!(outer.grown(), 50);
        // The peak survives the inner scope's churn.
        assert_eq!(c.peak(), 75);
    }

    #[test]
    fn scope_counts_allocation_events_not_bytes() {
        let c = Counters::new();
        c.note_alloc(10);
        let s = c.scope();
        assert_eq!(s.allocs(), 0);
        c.note_alloc(100);
        c.note_dealloc(100);
        // The byte delta cancelled; the event did not.
        assert_eq!(s.grown(), 0);
        assert_eq!(s.allocs(), 1);
        c.note_realloc(10, 50);
        assert_eq!(s.allocs(), 2, "realloc is one logical event");
    }

    #[test]
    fn scope_delta_can_go_negative_grown_saturates() {
        let c = Counters::new();
        c.note_alloc(100);
        let s = c.scope();
        c.note_dealloc(40);
        assert_eq!(s.delta(), -40);
        assert_eq!(s.grown(), 0);
        assert_eq!(s.baseline(), 100);
    }

    #[test]
    fn global_counters_are_reachable() {
        // No CountingAlloc is registered in this test binary, so the
        // global counters are silent — but the accessors must work.
        let live = live_bytes();
        let peak = peak_bytes();
        assert!(peak >= live || peak == 0);
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
    }
}
