//! The lock manager: strict two-phase row locking.
//!
//! Both HopsFS and λFS rely on the metadata store's row locks for
//! correctness — in λFS the coherence protocol's guarantee (§3.5) is that a
//! writer holds **exclusive** row locks while invalidating caches, so no
//! other NameNode can read-and-cache the row until the new value commits.
//!
//! This module is a pure data structure: it decides grants and returns the
//! tokens of waiters that become runnable; the [`Db`](crate::Db) layer maps
//! tokens back to scheduled continuations.
//!
//! Grant policy: readers share; writers are exclusive; queued writers block
//! later readers (no writer starvation); lock requests are re-entrant; a
//! sole shared holder may upgrade to exclusive.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::key::EncodedKey;
use crate::table::TableId;
use crate::txn::TxnId;

/// Lock strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// Shared (read) lock: compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock: compatible with nothing.
    Exclusive,
}

/// The canonical identity of a lockable row: table plus encoded key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockKey {
    /// Owning table.
    pub table: TableId,
    /// Order-preserving encoded primary key (inline for small keys, so
    /// cloning into the lock table is a memcpy, not a heap allocation).
    pub key: EncodedKey,
}

impl fmt::Display for LockKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{:02x?}]", self.table, self.key.as_slice())
    }
}

/// Opaque identity of a queued acquisition, used to resume or cancel it.
pub type WaiterToken = u64;

/// Result of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The lock is held by `txn` on return.
    Granted,
    /// The request was queued; the token will be reported by a later
    /// [`LockManager::release_all`].
    Wait,
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    token: WaiterToken,
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holders. Invariant: either any number of `Shared` entries or
    /// exactly one `Exclusive` entry.
    holders: Vec<(TxnId, LockMode)>,
    waiters: VecDeque<Waiter>,
}

impl LockState {
    fn holder_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.holders.iter().find(|(t, _)| *t == txn).map(|(_, m)| *m)
    }

    /// Compatibility with the current holders only (ignores the queue).
    /// This is the test for the waiter at the *front* of the queue.
    fn compatible_with_holders(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Exclusive => {
                self.holders.is_empty() || (self.holders.len() == 1 && self.holders[0].0 == txn)
            }
            LockMode::Shared => self.holders.iter().all(|(_, m)| *m == LockMode::Shared),
        }
    }

    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Exclusive => {
                self.holders.is_empty()
                    || (self.holders.len() == 1 && self.holders[0].0 == txn)
            }
            LockMode::Shared => {
                let no_x_holder =
                    self.holders.iter().all(|(_, m)| *m == LockMode::Shared);
                // Don't starve queued writers — unless this txn already
                // holds the lock (re-entrancy must not self-deadlock).
                let no_queued_writer = self
                    .waiters
                    .iter()
                    .all(|w| w.mode != LockMode::Exclusive)
                    || self.holder_mode(txn).is_some();
                no_x_holder && no_queued_writer
            }
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        match self.holders.iter_mut().find(|(t, _)| *t == txn) {
            Some(entry) => entry.1 = entry.1.max(mode),
            None => self.holders.push((txn, mode)),
        }
    }
}

/// Tracks all row locks and waiter queues.
#[derive(Debug, Default)]
pub struct LockManager {
    locks: HashMap<LockKey, LockState>,
    held_by: HashMap<TxnId, Vec<LockKey>>,
    next_token: WaiterToken,
}

impl LockManager {
    /// Creates an empty manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `txn` holds `key` with at least `mode` strength.
    #[must_use]
    pub fn holds(&self, txn: TxnId, key: &LockKey, mode: LockMode) -> bool {
        self.locks
            .get(key)
            .and_then(|s| s.holder_mode(txn))
            .is_some_and(|held| held >= mode)
    }

    /// Number of rows with at least one holder or waiter (diagnostics).
    #[must_use]
    pub fn active_rows(&self) -> usize {
        self.locks.len()
    }

    /// Attempts to acquire `key` in `mode` for `txn`.
    ///
    /// Re-entrant: if `txn` already holds the lock at `mode` or stronger,
    /// the call is a no-op returning [`Acquire::Granted`]. A sole shared
    /// holder requesting exclusive is upgraded in place; a non-sole holder
    /// queues an upgrade waiter at the *front* of the queue.
    pub fn acquire(&mut self, txn: TxnId, key: &LockKey, mode: LockMode) -> (Acquire, WaiterToken) {
        let state = self.locks.entry(key.clone()).or_default();
        if state.holder_mode(txn).is_some_and(|held| held >= mode) {
            return (Acquire::Granted, 0);
        }
        if state.grantable(txn, mode) {
            let newly = state.holder_mode(txn).is_none();
            state.grant(txn, mode);
            if newly {
                self.held_by.entry(txn).or_default().push(key.clone());
            }
            (Acquire::Granted, 0)
        } else {
            self.next_token += 1;
            let token = self.next_token;
            let waiter = Waiter { txn, mode, token };
            if state.holder_mode(txn).is_some() {
                // Upgrade request: jump the queue so a sole-holder upgrade
                // resolves as soon as co-holders drain.
                state.waiters.push_front(waiter);
            } else {
                state.waiters.push_back(waiter);
            }
            (Acquire::Wait, token)
        }
    }

    /// Removes a queued waiter (e.g. its transaction timed out). Returns
    /// `true` if the token was found; grants that become possible are
    /// reported like a release.
    pub fn cancel_waiter(&mut self, key: &LockKey, token: WaiterToken, granted: &mut Vec<WaiterToken>) -> bool {
        let Some(state) = self.locks.get_mut(key) else { return false };
        let before = state.waiters.len();
        state.waiters.retain(|w| w.token != token);
        let removed = state.waiters.len() != before;
        if removed {
            Self::pump(state, &mut self.held_by, key, granted);
            if state.holders.is_empty() && state.waiters.is_empty() {
                self.locks.remove(key);
            }
        }
        removed
    }

    /// Releases every lock held by `txn`, returning the tokens of waiters
    /// that are granted as a result (in grant order).
    pub fn release_all(&mut self, txn: TxnId) -> Vec<WaiterToken> {
        let mut granted = Vec::new();
        let keys = self.held_by.remove(&txn).unwrap_or_default();
        for key in keys {
            if let Some(state) = self.locks.get_mut(&key) {
                state.holders.retain(|(t, _)| *t != txn);
                Self::pump(state, &mut self.held_by, &key, &mut granted);
                if state.holders.is_empty() && state.waiters.is_empty() {
                    self.locks.remove(&key);
                }
            }
        }
        granted
    }

    /// Grants as many queued waiters as compatibility allows.
    fn pump(
        state: &mut LockState,
        held_by: &mut HashMap<TxnId, Vec<LockKey>>,
        key: &LockKey,
        granted: &mut Vec<WaiterToken>,
    ) {
        while let Some(front) = state.waiters.front() {
            // The front of the queue only needs holder compatibility; the
            // queue-aware rule (writers block later readers) applies to new
            // arrivals in `acquire`, not to the waiter whose turn it is.
            if !state.compatible_with_holders(front.txn, front.mode) {
                break;
            }
            let w = state.waiters.pop_front().expect("front exists");
            let newly = state.holder_mode(w.txn).is_none();
            state.grant(w.txn, w.mode);
            if newly {
                held_by.entry(w.txn).or_default().push(key.clone());
            }
            granted.push(w.token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> LockKey {
        LockKey { table: TableId::new(0), key: EncodedKey::from_slice(&[n]) }
    }
    fn txn(n: u64) -> TxnId {
        TxnId::new(n)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(txn(1), &key(1), LockMode::Shared).0, Acquire::Granted);
        assert_eq!(lm.acquire(txn(2), &key(1), LockMode::Shared).0, Acquire::Granted);
        assert!(lm.holds(txn(1), &key(1), LockMode::Shared));
        assert!(lm.holds(txn(2), &key(1), LockMode::Shared));
    }

    #[test]
    fn exclusive_excludes_everyone() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(txn(1), &key(1), LockMode::Exclusive).0, Acquire::Granted);
        assert_eq!(lm.acquire(txn(2), &key(1), LockMode::Shared).0, Acquire::Wait);
        assert_eq!(lm.acquire(txn(3), &key(1), LockMode::Exclusive).0, Acquire::Wait);
        assert!(!lm.holds(txn(2), &key(1), LockMode::Shared));
    }

    #[test]
    fn release_grants_fifo_with_shared_batching() {
        let mut lm = LockManager::new();
        lm.acquire(txn(1), &key(1), LockMode::Exclusive);
        let (_, s2) = lm.acquire(txn(2), &key(1), LockMode::Shared);
        let (_, s3) = lm.acquire(txn(3), &key(1), LockMode::Shared);
        let (_, x4) = lm.acquire(txn(4), &key(1), LockMode::Exclusive);
        let granted = lm.release_all(txn(1));
        // Both shared waiters are granted together; the writer still waits.
        assert_eq!(granted, vec![s2, s3]);
        let granted = lm.release_all(txn(2));
        assert!(granted.is_empty());
        let granted = lm.release_all(txn(3));
        assert_eq!(granted, vec![x4]);
        assert!(lm.holds(txn(4), &key(1), LockMode::Exclusive));
    }

    #[test]
    fn queued_writer_blocks_later_readers() {
        let mut lm = LockManager::new();
        lm.acquire(txn(1), &key(1), LockMode::Shared);
        let (_, xw) = lm.acquire(txn(2), &key(1), LockMode::Exclusive);
        // Reader arriving after a queued writer must wait (no starvation).
        assert_eq!(lm.acquire(txn(3), &key(1), LockMode::Shared).0, Acquire::Wait);
        let granted = lm.release_all(txn(1));
        assert_eq!(granted, vec![xw]);
    }

    #[test]
    fn reentrant_acquire_is_a_noop() {
        let mut lm = LockManager::new();
        lm.acquire(txn(1), &key(1), LockMode::Exclusive);
        assert_eq!(lm.acquire(txn(1), &key(1), LockMode::Exclusive).0, Acquire::Granted);
        assert_eq!(lm.acquire(txn(1), &key(1), LockMode::Shared).0, Acquire::Granted);
        // Still a single release.
        assert!(lm.release_all(txn(1)).is_empty());
        assert_eq!(lm.active_rows(), 0);
    }

    #[test]
    fn reentrant_shared_ignores_queued_writer() {
        let mut lm = LockManager::new();
        lm.acquire(txn(1), &key(1), LockMode::Shared);
        lm.acquire(txn(2), &key(1), LockMode::Exclusive);
        // txn 1 already holds S; re-acquiring S must not self-deadlock.
        assert_eq!(lm.acquire(txn(1), &key(1), LockMode::Shared).0, Acquire::Granted);
    }

    #[test]
    fn sole_holder_upgrades_in_place() {
        let mut lm = LockManager::new();
        lm.acquire(txn(1), &key(1), LockMode::Shared);
        assert_eq!(lm.acquire(txn(1), &key(1), LockMode::Exclusive).0, Acquire::Granted);
        assert!(lm.holds(txn(1), &key(1), LockMode::Exclusive));
    }

    #[test]
    fn non_sole_upgrade_waits_then_wins() {
        let mut lm = LockManager::new();
        lm.acquire(txn(1), &key(1), LockMode::Shared);
        lm.acquire(txn(2), &key(1), LockMode::Shared);
        let (res, tok) = lm.acquire(txn(1), &key(1), LockMode::Exclusive);
        assert_eq!(res, Acquire::Wait);
        let granted = lm.release_all(txn(2));
        assert_eq!(granted, vec![tok]);
        assert!(lm.holds(txn(1), &key(1), LockMode::Exclusive));
    }

    #[test]
    fn cancel_waiter_unblocks_queue() {
        let mut lm = LockManager::new();
        lm.acquire(txn(1), &key(1), LockMode::Shared);
        let (_, xw) = lm.acquire(txn(2), &key(1), LockMode::Exclusive);
        let (_, _sw) = lm.acquire(txn(3), &key(1), LockMode::Shared);
        let mut granted = Vec::new();
        assert!(lm.cancel_waiter(&key(1), xw, &mut granted));
        // With the writer gone, the shared waiter is compatible with the
        // shared holder and is granted immediately.
        assert_eq!(granted.len(), 1);
        assert!(lm.holds(txn(3), &key(1), LockMode::Shared));
        assert!(!lm.cancel_waiter(&key(1), xw, &mut granted));
    }

    #[test]
    fn release_all_spans_multiple_rows() {
        let mut lm = LockManager::new();
        lm.acquire(txn(1), &key(1), LockMode::Exclusive);
        lm.acquire(txn(1), &key(2), LockMode::Exclusive);
        let (_, w1) = lm.acquire(txn(2), &key(1), LockMode::Shared);
        let (_, w2) = lm.acquire(txn(2), &key(2), LockMode::Shared);
        let mut granted = lm.release_all(txn(1));
        granted.sort_unstable();
        let mut expect = vec![w1, w2];
        expect.sort_unstable();
        assert_eq!(granted, expect);
    }

    #[test]
    fn lock_table_garbage_collects_idle_rows() {
        let mut lm = LockManager::new();
        lm.acquire(txn(1), &key(7), LockMode::Exclusive);
        assert_eq!(lm.active_rows(), 1);
        lm.release_all(txn(1));
        assert_eq!(lm.active_rows(), 0);
    }
}
