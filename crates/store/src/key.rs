//! Canonical row-key encoding.
//!
//! The lock manager and the shard router need a uniform, order-preserving
//! byte representation of every table's primary key. [`KeyCodec`] provides
//! it: `encode` must be injective per table, and the byte ordering must
//! agree with the key's `Ord` (so range/ordering reasoning carries over).

/// A type usable as a table primary key.
///
/// Implementations must guarantee that `a < b ⇔ a.encode() < b.encode()`
/// (lexicographic byte order), which the provided implementations do by
/// using big-endian integers and length-prefix-free suffix strings.
pub trait KeyCodec: Ord + Clone + 'static {
    /// Order-preserving, injective byte encoding of the key.
    fn encode(&self) -> Vec<u8>;
}

impl KeyCodec for u64 {
    fn encode(&self) -> Vec<u8> {
        self.to_be_bytes().to_vec()
    }
}

impl KeyCodec for u32 {
    fn encode(&self) -> Vec<u8> {
        self.to_be_bytes().to_vec()
    }
}

impl KeyCodec for String {
    fn encode(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
}

impl KeyCodec for (u64, String) {
    /// Big-endian id then the string; ordering matches the tuple `Ord`
    /// because the fixed-width prefix compares first.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.1.len());
        out.extend_from_slice(&self.0.to_be_bytes());
        out.extend_from_slice(self.1.as_bytes());
        out
    }
}

impl KeyCodec for (u64, u64) {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.0.to_be_bytes());
        out.extend_from_slice(&self.1.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_encoding_preserves_order() {
        let mut values = [0u64, 1, 255, 256, u64::MAX, 42, 1 << 40];
        values.sort_unstable();
        let encoded: Vec<Vec<u8>> = values.iter().map(KeyCodec::encode).collect();
        let mut sorted = encoded.clone();
        sorted.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn tuple_encoding_preserves_order() {
        let mut keys = [(1u64, "b".to_string()),
            (1, "a".to_string()),
            (2, "".to_string()),
            (1, "ab".to_string()),
            (0, "zzz".to_string())];
        keys.sort();
        let encoded: Vec<Vec<u8>> = keys.iter().map(KeyCodec::encode).collect();
        let mut sorted = encoded.clone();
        sorted.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn encodings_are_injective_within_a_table() {
        assert_ne!((1u64, "ab".to_string()).encode(), (1u64, "ac".to_string()).encode());
        assert_ne!(5u64.encode(), 6u64.encode());
        assert_ne!((1u64, 2u64).encode(), (2u64, 1u64).encode());
    }
}
