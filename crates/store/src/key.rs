//! Canonical row-key encoding.
//!
//! The lock manager and the shard router need a uniform, order-preserving
//! byte representation of every table's primary key. [`KeyCodec`] provides
//! it: `encode_into` must be injective per table, and the byte ordering
//! must agree with the key's `Ord` (so range/ordering reasoning carries
//! over). [`EncodedKey`] is the owned form the lock manager works with:
//! small keys (integers, id+short-name tuples) live inline with no heap
//! allocation, so cloning one into a lock table is a memcpy.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A type usable as a table primary key.
///
/// Implementations must guarantee that `a < b ⇔ a.encode() < b.encode()`
/// (lexicographic byte order), which the provided implementations do by
/// using big-endian integers and length-prefix-free suffix strings.
pub trait KeyCodec: Ord + Clone + 'static {
    /// Appends the order-preserving, injective byte encoding of the key.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Order-preserving, injective byte encoding of the key.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

impl KeyCodec for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl KeyCodec for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl KeyCodec for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
}

impl KeyCodec for (u64, String) {
    /// Big-endian id then the string; ordering matches the tuple `Ord`
    /// because the fixed-width prefix compares first.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_be_bytes());
        out.extend_from_slice(self.1.as_bytes());
    }
}

impl KeyCodec for (u64, u64) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_be_bytes());
        out.extend_from_slice(&self.1.to_be_bytes());
    }
}

/// A `Copy` name suffix for `(id, name)` row keys: a `&'static str`
/// (pointing into an interner arena or at a literal) instead of an owned
/// `String`, so a children-index row key is 24 bytes with no heap box and
/// cloning one is a memcpy.
///
/// Equality and ordering are by **content** (`&str`'s own `Ord`), exactly
/// like the `String` it replaces, so two `NameKey`s built from different
/// arena entries with equal text still collide — interning is a memory
/// optimization, never a correctness requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameKey(&'static str);

impl NameKey {
    /// The smallest key (`""`): the start bound for `ls`-style range scans
    /// over one parent id, `(dir, NameKey::MIN)..(dir + 1, NameKey::MIN)`.
    pub const MIN: NameKey = NameKey("");

    /// Wraps a static (interned or literal) name.
    #[must_use]
    pub fn new(name: &'static str) -> NameKey {
        NameKey(name)
    }

    /// The name text.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl fmt::Display for NameKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl KeyCodec for (u64, NameKey) {
    /// Byte-identical to the `(u64, String)` encoding of the same text, so
    /// migrating a table's key type moves no row to a different shard and
    /// reorders no lock acquisition.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_be_bytes());
        out.extend_from_slice(self.1 .0.as_bytes());
    }
}

/// Bytes a key may occupy before spilling to the heap: covers `u64`,
/// `(u64, u64)`, and `(u64, name)` keys with names up to 14 bytes — every
/// key the metadata schema produces for typical component names — while
/// keeping the whole [`EncodedKey`] at 24 bytes (23 would pad the enum out
/// to 32).
const INLINE_KEY: usize = 22;

/// An owned, encoded row key with small-key optimization.
///
/// Equality, ordering, and hashing are all over the encoded bytes, so they
/// agree with the source key's `Ord` per the [`KeyCodec`] contract
/// regardless of representation.
#[derive(Clone)]
pub enum EncodedKey {
    /// Key bytes stored inline (the common case).
    Inline {
        /// Number of meaningful bytes in `buf`.
        len: u8,
        /// Inline storage; only `buf[..len]` is the key.
        buf: [u8; INLINE_KEY],
    },
    /// Key too large for the inline buffer.
    Heap(Box<[u8]>),
}

impl EncodedKey {
    /// Wraps already-encoded key bytes.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> EncodedKey {
        if bytes.len() <= INLINE_KEY {
            let mut buf = [0u8; INLINE_KEY];
            buf[..bytes.len()].copy_from_slice(bytes);
            EncodedKey::Inline { len: bytes.len() as u8, buf }
        } else {
            EncodedKey::Heap(bytes.into())
        }
    }

    /// Encodes a key directly, reusing `scratch` as the staging buffer.
    #[must_use]
    pub fn encode<K: KeyCodec>(key: &K, scratch: &mut Vec<u8>) -> EncodedKey {
        scratch.clear();
        key.encode_into(scratch);
        EncodedKey::from_slice(scratch)
    }

    /// The encoded key bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            EncodedKey::Inline { len, buf } => &buf[..usize::from(*len)],
            EncodedKey::Heap(bytes) => bytes,
        }
    }
}

impl PartialEq for EncodedKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for EncodedKey {}

impl Ord for EncodedKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialOrd for EncodedKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for EncodedKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for EncodedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x?}", self.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_encoding_preserves_order() {
        let mut values = [0u64, 1, 255, 256, u64::MAX, 42, 1 << 40];
        values.sort_unstable();
        let encoded: Vec<Vec<u8>> = values.iter().map(KeyCodec::encode).collect();
        let mut sorted = encoded.clone();
        sorted.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn tuple_encoding_preserves_order() {
        let mut keys = [(1u64, "b".to_string()),
            (1, "a".to_string()),
            (2, "".to_string()),
            (1, "ab".to_string()),
            (0, "zzz".to_string())];
        keys.sort();
        let encoded: Vec<Vec<u8>> = keys.iter().map(KeyCodec::encode).collect();
        let mut sorted = encoded.clone();
        sorted.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn encodings_are_injective_within_a_table() {
        assert_ne!((1u64, "ab".to_string()).encode(), (1u64, "ac".to_string()).encode());
        assert_ne!(5u64.encode(), 6u64.encode());
        assert_ne!((1u64, 2u64).encode(), (2u64, 1u64).encode());
    }

    #[test]
    fn encoded_key_agrees_with_raw_bytes_across_representations() {
        let mut scratch = Vec::new();
        let short = EncodedKey::encode(&7u64, &mut scratch);
        assert!(matches!(short, EncodedKey::Inline { .. }));
        assert_eq!(short.as_slice(), 7u64.encode().as_slice());

        let long_name = "a-deliberately-long-component-name".to_string();
        let long = EncodedKey::encode(&(9u64, long_name.clone()), &mut scratch);
        assert!(matches!(long, EncodedKey::Heap(_)));
        assert_eq!(long.as_slice(), (9u64, long_name).encode().as_slice());

        // Ordering and equality are representation-independent.
        let mut keys = vec![long.clone(), short.clone(), EncodedKey::from_slice(b"")];
        keys.sort();
        assert_eq!(keys[0].as_slice(), b"");
        assert_eq!(short, EncodedKey::from_slice(&7u64.encode()));
    }
}
