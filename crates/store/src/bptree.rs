//! Arena-backed B+ tree — the cache-conscious engine under [`TypedTable`].
//!
//! `std::collections::BTreeMap` spends the store's entire steady-state
//! budget at the fig08d scales on pointer-chasing: a 10M-inode table is
//! ~720 MB of individually boxed nodes holding at most 11 entries each, so
//! every point get walks ~7 levels of scattered heap, and each hop is a
//! DRAM *and* TLB miss. [`BpTree`] replaces it with a B+ tree whose nodes
//! live in flat per-tree arenas addressed by `u32` indices **with fixed
//! strides** — node `i`'s keys occupy `keys[i * CAP .. i * CAP + len[i]]`
//! of one contiguous buffer:
//!
//! * **No pointers, no per-node buffers.** Child references are arena
//!   indices and every key of every branch lives in one `Vec<K>`
//!   (`bkeys`), every leaf key in another (`lkeys`), values in a third.
//!   A descent level is therefore *one* dependent load (the key run at a
//!   computed offset), not two (node header, then its heap-allocated key
//!   buffer) — and a 10M-row table is a handful of giant allocations the
//!   allocator can back with huge pages, instead of hundreds of thousands
//!   of small ones each costing their own TLB entry.
//! * **High fanout.** Branches hold up to [`BRANCH_CAP`] = 128 separator
//!   keys (a 1 KiB key run for `u64` keys) and leaves hold
//!   [`LEAF_CAP`] = 64 entries, so a 10M-row tree is 4 levels deep where
//!   the std map needs 7. Node lengths live in their own dense arrays
//!   (4 bytes/node — L1/L2-resident even for million-node trees).
//! * **Struct-of-arrays nodes.** Keys and values live in separate
//!   buffers, so the binary search per node runs over one dense key run
//!   (512 B for `u64` leaf keys — 3–4 probed cache lines) instead of
//!   striding over 72-byte `(key, value)` pairs; the value buffer is
//!   touched exactly once, on the hit.
//! * **Leaf sibling links.** Range scans seek once and then walk `next`
//!   links leaf-by-leaf — no per-scan allocation, no re-descent, and the
//!   end bound is checked per *leaf* (one last-key compare), not per row
//!   ([`BpTree::scan_with`], [`BpTree::range`]). [`BpTree::count_range`]
//!   never touches interior rows at all: full middle leaves contribute
//!   `len()` by header.
//! * **Dense bulk build.** [`BpTree::from_ascending`] streams a sorted
//!   stream straight into the flat buffers at 100% fill, bottom-up,
//!   subsuming the insert-then-repack bootstrap path.
//!
//! Observable behavior is identical to `BTreeMap`: same insert/remove
//! results, same sorted iteration order, and the same panics on inverted
//! ranges. `crates/store/tests/engine_differential.rs` pins the
//! equivalence against the std map over randomized interleavings.
//!
//! Three deliberate deviations from a textbook B+ tree, all invisible to
//! callers:
//!
//! * **Preemptive splits.** Inserts split any full node on the way down
//!   (the parent is then guaranteed non-full), so nodes never overflow and
//!   no split ever propagates upward. Worst-case occupancy is the usual
//!   50%.
//! * **Lazy deletion.** Removal never rebalances; a node that empties is
//!   unlinked and returned to the free list. Heavy churn can therefore
//!   leave nodes sparse — [`BpTree::repack`] rebuilds at 100% occupancy,
//!   exactly like the `BTreeMap::from_iter` repack it replaces.
//! * **Slack slots hold stale clones.** Fixed strides mean the slots past
//!   `len` still contain *values* (old entries, or clones made when the
//!   node was materialized) rather than nothing. They are never observable
//!   — every read is bounded by `len` — and hold at most one row's memory
//!   per slot, the same order as the buffer slack any B-tree carries.
//!
//! [`TypedTable`]: crate::table

use std::fmt;
use std::ops::{Bound, RangeBounds};

/// Maximum entries per leaf. 64 keys are a 512-byte run for `u64` keys
/// (3–4 probed cache lines per search) while cutting tree height ~2× vs
/// the std map's fanout of 11.
pub const LEAF_CAP: usize = 64;

/// Maximum separator keys per branch (kids = keys + 1). 128 `u64` keys
/// are a 1 KiB contiguous run (~7 binary-search probes, all in adjacent
/// lines), and give a 10M-row tree only 3 branch levels — every level
/// shaved is one fewer dependent DRAM + TLB miss per descent.
pub const BRANCH_CAP: usize = 128;

/// Niche index value meaning "no node".
const NONE: u32 = u32::MAX;

/// Upper bound on tree height (root..leaf). Fanout ≥ 2 per level makes 24
/// levels unreachable (2^24 leaves ≫ any table here); descent scratch
/// lives in a fixed array of this size so no walk ever allocates.
const MAX_HEIGHT: usize = 24;

/// Per-leaf header: live entry count plus doubly-linked sibling indices.
/// 12 bytes — the header array stays cache-resident while the key/value
/// payloads live in the big stride buffers.
#[derive(Debug, Clone, Copy)]
struct LeafMeta {
    len: u32,
    prev: u32,
    next: u32,
}

/// Occupancy snapshot of a [`BpTree`], for tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// Live leaf nodes.
    pub leaves: usize,
    /// Live branch nodes.
    pub branches: usize,
    /// Entries stored.
    pub len: usize,
    /// Levels from root to leaf inclusive (1 for a root-leaf tree).
    pub height: u32,
}

impl NodeStats {
    /// Mean leaf fill as a fraction of [`LEAF_CAP`].
    #[must_use]
    pub fn leaf_occupancy(&self) -> f64 {
        if self.leaves == 0 {
            return 0.0;
        }
        self.len as f64 / (self.leaves * LEAF_CAP) as f64
    }
}

/// An ordered map from `K` to `V` backed by a stride-addressed arena B+
/// tree.
///
/// See the [module docs](self) for the layout rationale. The API mirrors
/// the slice of `BTreeMap` the store uses: [`get`](BpTree::get),
/// [`insert`](BpTree::insert), [`remove`](BpTree::remove),
/// [`range`](BpTree::range), [`scan_with`](BpTree::scan_with),
/// [`count_range`](BpTree::count_range), plus the bulk operations
/// [`from_ascending`](BpTree::from_ascending) and
/// [`repack`](BpTree::repack).
#[derive(Debug)]
pub struct BpTree<K, V> {
    /// Leaf keys, stride [`LEAF_CAP`] per leaf.
    lkeys: Vec<K>,
    /// Leaf values, stride [`LEAF_CAP`] per leaf, parallel to `lkeys`.
    lvals: Vec<V>,
    /// Leaf headers (len + sibling links).
    lmeta: Vec<LeafMeta>,
    /// Branch separator keys, stride [`BRANCH_CAP`] per branch.
    bkeys: Vec<K>,
    /// Branch children, stride [`BRANCH_CAP`] + 1 per branch.
    bkids: Vec<u32>,
    /// Branch separator counts (a branch with `n` keys has `n + 1` kids).
    blen: Vec<u32>,
    free_leaves: Vec<u32>,
    free_branches: Vec<u32>,
    /// Root node: a leaf index if `height == 1`, else a branch index.
    root: u32,
    /// Levels from root to leaf inclusive; never 0.
    height: u32,
    len: usize,
}

impl<K, V> Default for BpTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> BpTree<K, V> {
    /// An empty tree (a single empty root leaf; the key/value buffers are
    /// materialized lazily by the first insert, so an empty tree costs
    /// nothing).
    #[must_use]
    pub fn new() -> Self {
        BpTree {
            lkeys: Vec::new(),
            lvals: Vec::new(),
            lmeta: vec![LeafMeta { len: 0, prev: NONE, next: NONE }],
            bkeys: Vec::new(),
            bkids: Vec::new(),
            blen: Vec::new(),
            free_leaves: Vec::new(),
            free_branches: Vec::new(),
            root: 0,
            height: 1,
            len: 0,
        }
    }

    #[inline]
    fn lbase(i: u32) -> usize {
        i as usize * LEAF_CAP
    }

    #[inline]
    fn bbase(i: u32) -> usize {
        i as usize * BRANCH_CAP
    }

    #[inline]
    fn kbase(i: u32) -> usize {
        i as usize * (BRANCH_CAP + 1)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node counts and height, for occupancy pins and benches.
    #[must_use]
    pub fn node_stats(&self) -> NodeStats {
        NodeStats {
            leaves: self.lmeta.len() - self.free_leaves.len(),
            branches: self.blen.len() - self.free_branches.len(),
            len: self.len,
            height: self.height,
        }
    }

    /// In-range slice `[lo, hi)` of leaf `i`'s keys.
    #[inline]
    fn leaf_keys(&self, i: u32) -> &[K] {
        let base = Self::lbase(i);
        &self.lkeys[base..base + self.lmeta[i as usize].len as usize]
    }

    #[inline]
    fn branch_keys(&self, i: u32) -> &[K] {
        let base = Self::bbase(i);
        &self.bkeys[base..base + self.blen[i as usize] as usize]
    }

    /// The leftmost leaf (head of the sibling chain).
    fn head_leaf(&self) -> u32 {
        let mut node = self.root;
        for _ in 1..self.height {
            node = self.bkids[Self::kbase(node)];
        }
        node
    }
}

impl<K: Ord + Clone, V: Clone> BpTree<K, V> {
    /// Grows the leaf buffers to cover every header slot, filling slack
    /// with clones of `k`/`v`. Only the pristine root leaf of a fresh tree
    /// can be uncovered, so this is a one-shot branch on the insert path.
    #[inline]
    fn ensure_leaf_storage(&mut self, k: &K, v: &V) {
        let want = self.lmeta.len() * LEAF_CAP;
        if self.lkeys.len() < want {
            let (k, v) = (k.clone(), v.clone());
            self.lkeys.resize_with(want, || k.clone());
            self.lvals.resize_with(want, || v.clone());
        }
    }

    /// Allocates a leaf slot (recycling freed slots first; fresh slots
    /// materialize their key/value stride with clones of `fk`/`fv`).
    fn alloc_leaf(&mut self, fk: &K, fv: &V, prev: u32, next: u32) -> u32 {
        let meta = LeafMeta { len: 0, prev, next };
        if let Some(i) = self.free_leaves.pop() {
            self.lmeta[i as usize] = meta;
            return i;
        }
        let i = u32::try_from(self.lmeta.len()).expect("leaf arena overflow");
        assert!(i != NONE, "leaf arena overflow");
        self.lmeta.push(meta);
        let (fk, fv) = (fk.clone(), fv.clone());
        self.lkeys.resize_with(self.lmeta.len() * LEAF_CAP, || fk.clone());
        self.lvals.resize_with(self.lmeta.len() * LEAF_CAP, || fv.clone());
        i
    }

    /// Allocates an empty branch slot (fresh slots materialize their key
    /// stride with clones of `fk`, children with [`NONE`]).
    fn alloc_branch(&mut self, fk: &K) -> u32 {
        if let Some(i) = self.free_branches.pop() {
            self.blen[i as usize] = 0;
            return i;
        }
        let i = u32::try_from(self.blen.len()).expect("branch arena overflow");
        assert!(i != NONE, "branch arena overflow");
        self.blen.push(0);
        let fk = fk.clone();
        self.bkeys.resize_with(self.blen.len() * BRANCH_CAP, || fk.clone());
        self.bkids.resize(self.blen.len() * (BRANCH_CAP + 1), NONE);
        i
    }

    /// Child slot of `key` in branch `b`: the number of separators
    /// `<= key` (separator `i` routes keys `>= keys[i]` to kid `i + 1`).
    #[inline]
    fn child_slot(&self, b: u32, key: &K) -> usize {
        self.branch_keys(b).partition_point(|s| s <= key)
    }

    /// The leaf whose key range covers `key`.
    #[inline]
    fn leaf_for(&self, key: &K) -> u32 {
        let mut node = self.root;
        for _ in 1..self.height {
            let ci = self.child_slot(node, key);
            node = self.bkids[Self::kbase(node) + ci];
        }
        node
    }

    /// Looks up `key`.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        let leaf = self.leaf_for(key);
        match self.leaf_keys(leaf).binary_search(key) {
            Ok(i) => Some(&self.lvals[Self::lbase(leaf) + i]),
            Err(_) => None,
        }
    }

    /// Inserts `key → value`, returning the value it replaced, if any.
    ///
    /// Full nodes on the descent path are split preemptively, so the walk
    /// never backtracks; steady-state inserts into materialized nodes do
    /// not allocate at all.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.ensure_leaf_storage(&key, &value);
        if self.root_full() {
            let r = self.alloc_branch(&key);
            self.bkids[Self::kbase(r)] = self.root;
            self.root = r;
            self.height += 1;
        }
        let mut node = self.root;
        for level in (1..self.height).rev() {
            let mut ci = self.child_slot(node, &key);
            let child = self.bkids[Self::kbase(node) + ci];
            let child_full = if level == 1 {
                self.lmeta[child as usize].len as usize >= LEAF_CAP
            } else {
                self.blen[child as usize] as usize >= BRANCH_CAP
            };
            if child_full {
                self.split_child(node, ci, level == 1);
                if key >= self.bkeys[Self::bbase(node) + ci] {
                    ci += 1;
                }
            }
            node = self.bkids[Self::kbase(node) + ci];
        }
        let base = Self::lbase(node);
        let n = self.lmeta[node as usize].len as usize;
        match self.lkeys[base..base + n].binary_search(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.lvals[base + i], value)),
            Err(i) => {
                self.lkeys[base + n] = key;
                self.lvals[base + n] = value;
                self.lkeys[base + i..=base + n].rotate_right(1);
                self.lvals[base + i..=base + n].rotate_right(1);
                self.lmeta[node as usize].len = (n + 1) as u32;
                self.len += 1;
                None
            }
        }
    }

    fn root_full(&self) -> bool {
        if self.height == 1 {
            self.lmeta[self.root as usize].len as usize >= LEAF_CAP
        } else {
            self.blen[self.root as usize] as usize >= BRANCH_CAP
        }
    }

    /// Splits the full child at kid slot `ci` of `parent` in half,
    /// installing the separator and right node into `parent` (which has
    /// room, by the preemptive-split invariant). Entry moves are swaps
    /// into the new slot's stride — no buffer allocation beyond a fresh
    /// slot's one-time materialization.
    fn split_child(&mut self, parent: u32, ci: usize, child_is_leaf: bool) {
        let child = self.bkids[Self::kbase(parent) + ci];
        let (sep, right) = if child_is_leaf {
            let LeafMeta { len, next, .. } = self.lmeta[child as usize];
            let n = len as usize;
            let mid = n / 2;
            let cb = Self::lbase(child);
            let fk = self.lkeys[cb + mid].clone();
            let fv = self.lvals[cb + mid].clone();
            let ri = self.alloc_leaf(&fk, &fv, child, next);
            let rb = Self::lbase(ri);
            let cb = Self::lbase(child);
            for j in 0..n - mid {
                self.lkeys.swap(rb + j, cb + mid + j);
                self.lvals.swap(rb + j, cb + mid + j);
            }
            self.lmeta[ri as usize].len = (n - mid) as u32;
            self.lmeta[child as usize].len = mid as u32;
            self.lmeta[child as usize].next = ri;
            if next != NONE {
                self.lmeta[next as usize].prev = ri;
            }
            // `fk` is the right half's minimum — exactly the separator.
            (fk, ri)
        } else {
            let n = self.blen[child as usize] as usize;
            let mid = n / 2;
            let cb = Self::bbase(child);
            let fk = self.bkeys[cb + mid].clone();
            let ri = self.alloc_branch(&fk);
            let rb = Self::bbase(ri);
            let cb = Self::bbase(child);
            for j in 0..n - mid - 1 {
                self.bkeys.swap(rb + j, cb + mid + 1 + j);
            }
            let (rk, ck) = (Self::kbase(ri), Self::kbase(child));
            for j in 0..n - mid {
                self.bkids.swap(rk + j, ck + mid + 1 + j);
            }
            self.blen[ri as usize] = (n - mid - 1) as u32;
            self.blen[child as usize] = mid as u32;
            // The promoted middle separator (its slot in `child` becomes
            // slack past the new len).
            (fk, ri)
        };
        let pb = Self::bbase(parent);
        let pk = Self::kbase(parent);
        let pn = self.blen[parent as usize] as usize;
        self.bkeys[pb + pn] = sep;
        self.bkeys[pb + ci..=pb + pn].rotate_right(1);
        self.bkids[pk + pn + 1] = right;
        self.bkids[pk + ci + 1..=pk + pn + 1].rotate_right(1);
        self.blen[parent as usize] = (pn + 1) as u32;
    }

    /// Removes `key`, returning its value, if present.
    ///
    /// No rebalancing: a leaf (or branch) that empties is unlinked and
    /// freed, and the root collapses when it has a single child. Sparse
    /// nodes left by churn are re-densified by [`repack`](BpTree::repack).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut stack = [(0u32, 0u16); MAX_HEIGHT];
        let mut depth = 0usize;
        let mut node = self.root;
        for _ in 1..self.height {
            let ci = self.child_slot(node, key);
            stack[depth] = (node, ci as u16);
            depth += 1;
            node = self.bkids[Self::kbase(node) + ci];
        }
        let base = Self::lbase(node);
        let n = self.lmeta[node as usize].len as usize;
        let i = match self.lkeys[base..base + n].binary_search(key) {
            Ok(i) => i,
            Err(_) => return None,
        };
        // The removed entry rotates into the slack past `len`; the clone
        // is what the caller gets (equal value, same as BTreeMap's move).
        let value = self.lvals[base + i].clone();
        self.lkeys[base + i..base + n].rotate_left(1);
        self.lvals[base + i..base + n].rotate_left(1);
        self.lmeta[node as usize].len = (n - 1) as u32;
        self.len -= 1;
        if n == 1 && depth > 0 {
            let LeafMeta { prev, next, .. } = self.lmeta[node as usize];
            if prev != NONE {
                self.lmeta[prev as usize].next = next;
            }
            if next != NONE {
                self.lmeta[next as usize].prev = prev;
            }
            self.free_leaves.push(node);
            // Cascade: drop the empty child from its parent; a branch that
            // loses its last child is itself dropped one level up.
            while depth > 0 {
                depth -= 1;
                let (b, ci) = stack[depth];
                let ci = ci as usize;
                let bn = self.blen[b as usize] as usize;
                if bn == 0 {
                    // Removing the only child empties the branch too.
                    self.free_branches.push(b);
                    continue;
                }
                let kb = Self::kbase(b);
                self.bkids[kb + ci..kb + bn + 1].rotate_left(1);
                let bb = Self::bbase(b);
                let kpos = ci.saturating_sub(1);
                self.bkeys[bb + kpos..bb + bn].rotate_left(1);
                self.blen[b as usize] = (bn - 1) as u32;
                break;
            }
            if depth == 0 {
                // The cascade reached the root.
                if self.free_branches.last() == Some(&self.root) {
                    // Even the root emptied: recycle a freed leaf slot as
                    // the fresh empty root (the cascade just freed one).
                    let i = self.free_leaves.pop().expect("cascade freed a leaf");
                    self.lmeta[i as usize] = LeafMeta { len: 0, prev: NONE, next: NONE };
                    self.root = i;
                    self.height = 1;
                } else {
                    while self.height > 1 && self.blen[self.root as usize] == 0 {
                        let only = self.bkids[Self::kbase(self.root)];
                        self.free_branches.push(self.root);
                        self.root = only;
                        self.height -= 1;
                    }
                }
            }
        }
        Some(value)
    }

    /// First position `>=`/`>` the start bound: `(leaf, index)`, possibly
    /// one past the end of a leaf (walkers normalize that by following the
    /// sibling link).
    fn seek(&self, start: Bound<&K>) -> (u32, usize) {
        match start {
            Bound::Unbounded => (self.head_leaf(), 0),
            Bound::Included(k) => {
                let leaf = self.leaf_for(k);
                (leaf, self.leaf_keys(leaf).partition_point(|ek| ek < k))
            }
            Bound::Excluded(k) => {
                let leaf = self.leaf_for(k);
                (leaf, self.leaf_keys(leaf).partition_point(|ek| ek <= k))
            }
        }
    }

    fn check_range<R: RangeBounds<K>>(range: &R) {
        match (range.start_bound(), range.end_bound()) {
            (Bound::Included(s) | Bound::Excluded(s), Bound::Included(e) | Bound::Excluded(e))
                if s > e =>
            {
                panic!("range start is greater than range end in BpTree")
            }
            (Bound::Excluded(s), Bound::Excluded(e)) if s == e => {
                panic!("range start and end are equal and sides are excluded in BpTree")
            }
            _ => {}
        }
    }

    /// Positions *within one leaf's key run* where the end bound cuts off:
    /// the in-range suffix is `[pos, hi)` and `done` says whether the walk
    /// stops at this leaf. One last-key compare decides "whole leaf in
    /// range" without a search.
    #[inline]
    fn leaf_end(keys: &[K], end: Bound<&K>) -> (usize, bool) {
        match end {
            Bound::Unbounded => (keys.len(), false),
            Bound::Included(e) => match keys.last() {
                Some(last) if last <= e => (keys.len(), false),
                _ => (keys.partition_point(|k| k <= e), true),
            },
            Bound::Excluded(e) => match keys.last() {
                Some(last) if last < e => (keys.len(), false),
                _ => (keys.partition_point(|k| k < e), true),
            },
        }
    }

    /// Visits every `(key, value)` in `range` in ascending key order.
    ///
    /// One descent to the start bound, then a sibling-link walk with the
    /// end bound checked per leaf (a single last-key compare for interior
    /// leaves), so per-row work is exactly the visitor call. The hot
    /// listing paths use this to fold rows without materializing a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics on an inverted or empty-excluded range, like
    /// `BTreeMap::range`.
    pub fn scan_with<R: RangeBounds<K>>(&self, range: &R, mut visit: impl FnMut(&K, &V)) {
        Self::check_range(range);
        let (mut leaf, mut pos) = self.seek(range.start_bound());
        let end = range.end_bound();
        loop {
            let keys = self.leaf_keys(leaf);
            let (hi, done) = Self::leaf_end(keys, end);
            let base = Self::lbase(leaf);
            for i in pos..hi {
                visit(&self.lkeys[base + i], &self.lvals[base + i]);
            }
            let next = self.lmeta[leaf as usize].next;
            if done || next == NONE {
                return;
            }
            leaf = next;
            pos = 0;
        }
    }

    /// Number of entries in `range`.
    ///
    /// Walks the leaf chain by header: interior leaves contribute their
    /// `len` with no row access at all; only the two boundary leaves are
    /// searched. O(height + leaves-in-range), vs
    /// `BTreeMap::range(..).count()` touching every entry.
    #[must_use]
    pub fn count_range<R: RangeBounds<K>>(&self, range: &R) -> usize {
        Self::check_range(range);
        let (mut leaf, mut pos) = self.seek(range.start_bound());
        let end = range.end_bound();
        let mut count = 0usize;
        loop {
            let (hi, done) = Self::leaf_end(self.leaf_keys(leaf), end);
            count += hi.saturating_sub(pos);
            let next = self.lmeta[leaf as usize].next;
            if done || next == NONE {
                return count;
            }
            leaf = next;
            pos = 0;
        }
    }

    /// Iterates the entries in `range` in ascending key order.
    ///
    /// One descent to the start bound, then a sibling-link walk over
    /// per-leaf key/value slices: no allocation, no re-descent. `range` is
    /// taken by reference so the iterator can borrow its bounds.
    ///
    /// # Panics
    ///
    /// Panics on an inverted or empty-excluded range, like
    /// `BTreeMap::range`.
    pub fn range<'a, R: RangeBounds<K>>(&'a self, range: &'a R) -> RangeIter<'a, K, V> {
        Self::check_range(range);
        let (leaf, pos) = self.seek(range.start_bound());
        let end = range.end_bound();
        RangeIter::start(self, leaf, pos, end)
    }

    /// Iterates all entries in ascending key order.
    #[must_use]
    pub fn iter(&self) -> RangeIter<'_, K, V> {
        RangeIter::start(self, self.head_leaf(), 0, Bound::Unbounded)
    }

    /// Builds a tree from a stream already in strictly ascending key
    /// order, streaming the rows straight into the flat buffers at 100%
    /// fill and building the branch levels bottom-up.
    ///
    /// The caller owns the ascent check (the table layer asserts it with
    /// its table-name panic); out-of-order input here produces an
    /// inconsistent tree, not UB.
    #[must_use]
    pub fn from_ascending(rows: impl Iterator<Item = (K, V)>) -> Self {
        // An honest lower bound reserves the arenas in one allocation:
        // no doubling reallocs (each one recopies the whole arena), and
        // — because the allocator's huge-page advice only affects pages
        // faulted *after* it — the whole buffer gets huge-page coverage
        // instead of just the post-final-realloc tail. Rounded up to a
        // full stride so the tail-leaf padding below fits too.
        let hint = rows.size_hint().0.div_ceil(LEAF_CAP) * LEAF_CAP;
        let mut t = BpTree {
            lkeys: Vec::with_capacity(hint),
            lvals: Vec::with_capacity(hint),
            lmeta: Vec::new(),
            bkeys: Vec::new(),
            bkids: Vec::new(),
            blen: Vec::new(),
            free_leaves: Vec::new(),
            free_branches: Vec::new(),
            root: 0,
            height: 1,
            len: 0,
        };
        for (k, v) in rows {
            t.lkeys.push(k);
            t.lvals.push(v);
        }
        t.len = t.lkeys.len();
        if t.len == 0 {
            t.lmeta.push(LeafMeta { len: 0, prev: NONE, next: NONE });
            return t;
        }
        // Pad the tail leaf's slack with clones of the last row, then trim
        // the growth slack the streaming pushes left behind (the arenas
        // must be exactly sized — the slack of a doubling `Vec` would show
        // up as bytes/inode).
        let leaves = t.len.div_ceil(LEAF_CAP);
        let fk = t.lkeys[t.len - 1].clone();
        let fv = t.lvals[t.len - 1].clone();
        t.lkeys.resize_with(leaves * LEAF_CAP, || fk.clone());
        t.lvals.resize_with(leaves * LEAF_CAP, || fv.clone());
        t.lkeys.shrink_to_fit();
        t.lvals.shrink_to_fit();
        let tail_len = t.len - (leaves - 1) * LEAF_CAP;
        for i in 0..leaves {
            t.lmeta.push(LeafMeta {
                len: if i + 1 < leaves { LEAF_CAP as u32 } else { tail_len as u32 },
                prev: if i == 0 { NONE } else { (i - 1) as u32 },
                next: if i + 1 == leaves { NONE } else { (i + 1) as u32 },
            });
        }
        assert!(leaves <= NONE as usize, "leaf arena overflow");

        // Branch levels: chunks of BRANCH_CAP + 1 kids, separators = each
        // non-first kid's subtree minimum.
        let mut level: Vec<(K, u32)> =
            (0..leaves).map(|i| (t.lkeys[i * LEAF_CAP].clone(), i as u32)).collect();
        while level.len() > 1 {
            let mut next_level: Vec<(K, u32)> =
                Vec::with_capacity(level.len() / (BRANCH_CAP + 1) + 1);
            for chunk in level.chunks(BRANCH_CAP + 1) {
                let bi = u32::try_from(t.blen.len()).expect("branch arena overflow");
                t.blen.push((chunk.len() - 1) as u32);
                t.bkeys.extend(chunk.iter().skip(1).map(|(k, _)| k.clone()));
                let fk = chunk[0].0.clone();
                t.bkeys.resize_with(t.blen.len() * BRANCH_CAP, || fk.clone());
                t.bkids.extend(chunk.iter().map(|(_, i)| *i));
                t.bkids.resize(t.blen.len() * (BRANCH_CAP + 1), NONE);
                next_level.push((chunk[0].0.clone(), bi));
            }
            level = next_level;
            t.height += 1;
        }
        t.bkeys.shrink_to_fit();
        t.bkids.shrink_to_fit();
        t.root = level[0].1;
        t
    }

    /// Rebuilds the tree at 100% node occupancy (contents and iteration
    /// order unchanged) — the engine-level `repack`.
    pub fn repack(&mut self) {
        let old = std::mem::take(self);
        *self = Self::from_ascending(old.into_entries());
    }

    /// Consumes the tree into an ascending entry stream.
    ///
    /// The stride layout cannot move entries out of the middle of a
    /// buffer, so the stream yields clones — equal values, lazily, without
    /// materializing a second copy of the table.
    pub fn into_entries(self) -> impl Iterator<Item = (K, V)> {
        let leaf = self.head_leaf();
        let remaining = self.len;
        IntoEntries { tree: self, leaf, pos: 0, remaining }
    }
}

impl<K: Ord + Clone + fmt::Debug, V: Clone> BpTree<K, V> {
    /// Asserts the structural invariants (sorted leaves, stride coverage,
    /// consistent sibling links, len agreement). Test aid — O(n), never
    /// called on hot paths.
    pub fn check_invariants(&self) {
        assert!(
            self.lkeys.len() == self.lvals.len(),
            "key/value buffers diverged: {} vs {}",
            self.lkeys.len(),
            self.lvals.len()
        );
        let mut count = 0usize;
        let mut prev_key: Option<&K> = None;
        let mut prev_leaf = NONE;
        let mut leaf = self.head_leaf();
        while leaf != NONE {
            let m = &self.lmeta[leaf as usize];
            assert_eq!(m.prev, prev_leaf, "broken prev link at leaf {leaf}");
            assert!(
                Self::lbase(leaf) + m.len as usize <= self.lkeys.len(),
                "leaf {leaf} stride not covered"
            );
            for k in self.leaf_keys(leaf) {
                if let Some(p) = prev_key {
                    assert!(p < k, "keys out of order: {p:?} !< {k:?}");
                }
                prev_key = Some(k);
                count += 1;
            }
            prev_leaf = leaf;
            leaf = m.next;
        }
        assert_eq!(count, self.len, "len does not match leaf contents");
    }
}

/// Consuming ascending iterator over a [`BpTree`] (see
/// [`BpTree::into_entries`]).
struct IntoEntries<K, V> {
    tree: BpTree<K, V>,
    leaf: u32,
    pos: usize,
    remaining: usize,
}

impl<K: Ord + Clone, V: Clone> Iterator for IntoEntries<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        loop {
            let m = &self.tree.lmeta[self.leaf as usize];
            if self.pos < m.len as usize {
                let i = BpTree::<K, V>::lbase(self.leaf) + self.pos;
                self.pos += 1;
                self.remaining -= 1;
                return Some((self.tree.lkeys[i].clone(), self.tree.lvals[i].clone()));
            }
            if m.next == NONE {
                return None;
            }
            self.leaf = m.next;
            self.pos = 0;
        }
    }

    // Exact: the tree knows its length, and the walk yields every entry.
    // Downstream bulk builds size their arenas off this.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Borrowing ascending iterator over a key range of a [`BpTree`].
///
/// Holds the current leaf's key/value slices directly, so `next()` is a
/// slice index plus an end-bound compare; the tree is only consulted again
/// when a leaf is exhausted.
#[derive(Debug)]
pub struct RangeIter<'a, K, V> {
    tree: &'a BpTree<K, V>,
    /// In-range suffix of the current leaf.
    keys: &'a [K],
    vals: &'a [V],
    pos: usize,
    /// Next sibling to walk into, [`NONE`] when the current leaf is last
    /// or the end bound cut the walk short.
    next: u32,
    end: Bound<&'a K>,
}

impl<'a, K: Ord + Clone, V: Clone> RangeIter<'a, K, V> {
    fn start(tree: &'a BpTree<K, V>, leaf: u32, pos: usize, end: Bound<&'a K>) -> Self {
        let keys = tree.leaf_keys(leaf);
        let (hi, done) = BpTree::<K, V>::leaf_end(keys, end);
        let base = BpTree::<K, V>::lbase(leaf);
        let lo = pos.min(hi);
        RangeIter {
            tree,
            keys: &tree.lkeys[base + lo..base + hi],
            vals: &tree.lvals[base + lo..base + hi],
            pos: 0,
            next: if done { NONE } else { tree.lmeta[leaf as usize].next },
            end,
        }
    }
}

impl<'a, K: Ord + Clone, V: Clone> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            if self.pos < self.keys.len() {
                let i = self.pos;
                self.pos += 1;
                return Some((&self.keys[i], &self.vals[i]));
            }
            if self.next == NONE {
                return None;
            }
            let leaf = self.next;
            let keys = self.tree.leaf_keys(leaf);
            let (hi, done) = BpTree::<K, V>::leaf_end(keys, self.end);
            let base = BpTree::<K, V>::lbase(leaf);
            self.keys = &self.tree.lkeys[base..base + hi];
            self.vals = &self.tree.lvals[base..base + hi];
            self.pos = 0;
            self.next = if done { NONE } else { self.tree.lmeta[leaf as usize].next };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn assert_matches_model(tree: &BpTree<u64, u64>, model: &BTreeMap<u64, u64>) {
        assert_eq!(tree.len(), model.len());
        let got: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
        tree.check_invariants();
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = BpTree::new();
        assert_eq!(t.insert(5u64, 50u64), None);
        assert_eq!(t.insert(5, 51), Some(50));
        assert_eq!(t.get(&5), Some(&51));
        assert_eq!(t.remove(&5), Some(51));
        assert_eq!(t.remove(&5), None);
        assert!(t.is_empty());
    }

    #[test]
    fn grows_through_many_splits_and_stays_sorted() {
        let mut t = BpTree::new();
        let mut model = BTreeMap::new();
        // Interleaved ascending/descending/stride inserts force splits on
        // left, right, and middle edges.
        for i in 0..50_000u64 {
            let k = (i * 2_654_435_761) % 100_003;
            t.insert(k, i);
            model.insert(k, i);
        }
        assert!(t.node_stats().height > 2, "tree should have branch levels");
        assert_matches_model(&t, &model);
    }

    #[test]
    fn removal_shrinks_back_to_empty() {
        let mut t = BpTree::new();
        let keys: Vec<u64> = (0..2_000).map(|i| (i * 37) % 4_001).collect();
        for &k in &keys {
            t.insert(k, k + 1);
        }
        let mut uniq: Vec<u64> = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        for &k in uniq.iter().rev() {
            assert_eq!(t.remove(&k), Some(k + 1), "key {k}");
        }
        assert!(t.is_empty());
        assert_eq!(t.node_stats().height, 1);
        t.check_invariants();
        // The tree stays usable after collapsing to empty.
        t.insert(9, 9);
        assert_eq!(t.get(&9), Some(&9));
    }

    #[test]
    fn range_bounds_match_btreemap() {
        let mut t = BpTree::new();
        let mut model = BTreeMap::new();
        for i in (0..400u64).step_by(3) {
            t.insert(i, i);
            model.insert(i, i);
        }
        let ranges: Vec<(Bound<u64>, Bound<u64>)> = vec![
            (Bound::Unbounded, Bound::Unbounded),
            (Bound::Included(30), Bound::Excluded(90)),
            (Bound::Excluded(30), Bound::Included(90)),
            (Bound::Included(31), Bound::Included(31)),
            (Bound::Included(500), Bound::Unbounded),
            (Bound::Unbounded, Bound::Excluded(0)),
        ];
        for r in ranges {
            let got: Vec<u64> = t.range(&r).map(|(k, _)| *k).collect();
            let want: Vec<u64> = model.range(r).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "range {r:?}");
            assert_eq!(t.count_range(&r), want.len());
            let mut visited = Vec::new();
            t.scan_with(&r, |k, _| visited.push(*k));
            assert_eq!(visited, want, "scan_with over {r:?}");
        }
    }

    #[test]
    #[should_panic(expected = "range start is greater than range end")]
    fn inverted_range_panics() {
        let t: BpTree<u64, u64> = BpTree::new();
        let _ = t.count_range(&(10..5));
    }

    #[test]
    #[should_panic(expected = "equal and sides are excluded")]
    fn excluded_empty_range_panics() {
        let t: BpTree<u64, u64> = BpTree::new();
        let r = (Bound::Excluded(7u64), Bound::Excluded(7u64));
        let _ = t.count_range(&r);
    }

    #[test]
    fn bulk_build_is_dense_and_ordered() {
        let rows = (0..10_000u64).map(|i| (i, i * 2));
        let t = BpTree::from_ascending(rows);
        assert_eq!(t.len(), 10_000);
        t.check_invariants();
        let stats = t.node_stats();
        // Every leaf except possibly the last is 100% full.
        assert!(
            stats.leaves <= 10_000 / LEAF_CAP + 1,
            "bulk build left sparse leaves: {stats:?}"
        );
        assert!(stats.leaf_occupancy() > 0.99, "occupancy {:.3}", stats.leaf_occupancy());
        let got: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, (0..10_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_build_arenas_are_exactly_sized() {
        let t = BpTree::from_ascending((0..100_000u64).map(|i| (i, i)));
        // The streaming build must not leave doubling slack behind — the
        // arenas are the table's entire footprint.
        assert_eq!(t.lkeys.capacity(), t.lkeys.len(), "leaf key slack");
        assert_eq!(t.lvals.capacity(), t.lvals.len(), "leaf value slack");
        assert_eq!(t.lkeys.len(), t.lmeta.len() * LEAF_CAP);
    }

    #[test]
    fn bulk_build_empty_and_tiny() {
        let t: BpTree<u64, u64> = BpTree::from_ascending(std::iter::empty());
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        let mut t = BpTree::from_ascending([(3u64, 4u64)].into_iter());
        assert_eq!(t.get(&3), Some(&4));
        t.insert(1, 1);
        t.check_invariants();
    }

    #[test]
    fn repack_densifies_after_churn() {
        let mut t = BpTree::new();
        for i in 0..16_384u64 {
            t.insert(i, i);
        }
        for i in (0..16_384u64).filter(|i| i % 3 != 0) {
            t.remove(&i);
        }
        let sparse = t.node_stats();
        t.repack();
        let dense = t.node_stats();
        assert_eq!(dense.len, sparse.len);
        assert!(dense.leaves < sparse.leaves, "{sparse:?} -> {dense:?}");
        assert!(dense.leaf_occupancy() > 0.99);
        t.check_invariants();
        let got: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, (0..16_384u64).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn freed_nodes_are_recycled() {
        let mut t = BpTree::new();
        for round in 0..4 {
            for i in 0..512u64 {
                t.insert(i, round);
            }
            for i in 0..512u64 {
                t.remove(&i);
            }
        }
        // Churn must not grow the arenas round over round.
        assert!(t.lmeta.len() <= 64, "leaf arena grew unbounded: {}", t.lmeta.len());
        t.check_invariants();
    }

    #[test]
    fn scan_with_visits_in_order_without_alloc() {
        let t = BpTree::from_ascending((0..200u64).map(|i| (i, i)));
        let mut seen = Vec::new();
        t.scan_with(&(50u64..60), |k, v| seen.push((*k, *v)));
        assert_eq!(seen, (50..60u64).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn count_range_matches_walks_after_churn() {
        let mut t = BpTree::new();
        let mut model = BTreeMap::new();
        for i in 0..3_000u64 {
            let k = (i * 7_919) % 5_003;
            t.insert(k, k);
            model.insert(k, k);
        }
        for i in 0..2_000u64 {
            let k = (i * 6_007) % 5_003;
            t.remove(&k);
            model.remove(&k);
        }
        for lo in (0..5_000u64).step_by(613) {
            for hi in [lo, lo + 100, lo + 2_500] {
                assert_eq!(
                    t.count_range(&(lo..hi)),
                    model.range(lo..hi).count(),
                    "count_range({lo}..{hi})"
                );
            }
        }
    }
}
