//! # lambda-store
//!
//! A sharded, transactional, in-memory row store — the reproduction's stand-in
//! for the MySQL Cluster NDB deployment that backs both HopsFS and λFS in
//! the ASPLOS '23 paper.
//!
//! The store combines two roles:
//!
//! 1. **Logical correctness**: typed tables with strict two-phase row
//!    locking, ACID transactions, undo-log rollback, batched primary-key
//!    reads, and range scans. The λFS coherence protocol's safety argument
//!    ("the leader holds exclusive write-locks, so no NameNode can
//!    read-and-cache stale metadata", §3.5) rests on these locks actually
//!    existing, and here they do.
//! 2. **Performance model**: every row operation charges service time on
//!    the queueing station of the shard that owns the row, so the store has
//!    a real, saturable capacity — the bottleneck that caps HopsFS in the
//!    paper's evaluation and caps *write* throughput for every system.
//!
//! See [`Db`] for the API and an end-to-end example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod baseline;
pub mod bptree;
mod db;
mod error;
mod key;
mod lock;
mod table;
mod txn;

pub use backend::{BackendKind, DurabilityConfig, DurabilityStats};
pub use db::{Db, DbStats};
pub use lambda_lsm::{LsmConfig, LsmStats};
pub use error::{StoreError, StoreResult};
pub use key::{EncodedKey, KeyCodec, NameKey};
pub use lock::{Acquire, LockKey, LockManager, LockMode, WaiterToken};
pub use table::{TableHandle, TableId};
pub use txn::TxnId;

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_sim::params::StoreParams;
    use lambda_sim::{Sim, SimDuration};
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    fn new_db() -> Db {
        Db::new(&StoreParams::default(), SimDuration::from_secs(5))
    }

    #[test]
    fn read_locked_returns_values_in_key_order_given() {
        let mut sim = Sim::new(1);
        let db = new_db();
        let t = db.create_table::<u64, u64>("t");
        let txn = db.begin();
        let db2 = db.clone();
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        db.lock(
            &mut sim,
            txn,
            vec![db.lock_key(t, &1), db.lock_key(t, &2)],
            LockMode::Exclusive,
            move |sim, r| {
                r.unwrap();
                db2.upsert(txn, t, 1, 100).unwrap();
                db2.upsert(txn, t, 2, 200).unwrap();
                let db3 = db2.clone();
                db2.commit(sim, txn, move |sim, r| {
                    r.unwrap();
                    let txn2 = db3.begin();
                    let db4 = db3.clone();
                    db3.read_locked(
                        sim,
                        txn2,
                        t,
                        vec![2, 1, 3],
                        LockMode::Shared,
                        move |sim, values| {
                            assert_eq!(values.unwrap(), vec![Some(200), Some(100), None]);
                            db4.commit(sim, txn2, move |_sim, r| r.unwrap());
                            done2.set(true);
                        },
                    );
                });
            },
        );
        sim.run();
        assert!(done.get());
        let stats = db.stats();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.rows_written, 2);
    }

    #[test]
    fn write_without_lock_is_rejected() {
        let db = new_db();
        let t = db.create_table::<u64, u64>("t");
        let txn = db.begin();
        let err = db.upsert(txn, t, 1, 1).unwrap_err();
        assert!(matches!(err, StoreError::LockNotHeld { .. }));
    }

    #[test]
    fn abort_rolls_back_all_writes_in_reverse() {
        let mut sim = Sim::new(2);
        let db = new_db();
        let t = db.create_table::<u64, String>("t");
        // Seed a committed row.
        let txn = db.begin();
        let db2 = db.clone();
        db.lock(&mut sim, txn, vec![db.lock_key(t, &1)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            db2.upsert(txn, t, 1, "committed".into()).unwrap();
            db2.commit(sim, txn, |_s, r| r.unwrap());
        });
        sim.run();
        // Now mutate it twice plus create a row, then abort.
        let txn2 = db.begin();
        let db3 = db.clone();
        let keys = {
            let mut k = vec![db.lock_key(t, &1), db.lock_key(t, &2)];
            k.sort();
            k
        };
        db.lock(&mut sim, txn2, keys, LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            db3.upsert(txn2, t, 1, "dirty-1".into()).unwrap();
            db3.upsert(txn2, t, 1, "dirty-2".into()).unwrap();
            db3.upsert(txn2, t, 2, "new".into()).unwrap();
            db3.abort(sim, txn2);
        });
        sim.run();
        assert_eq!(db.peek(t, &1), Some("committed".to_string()));
        assert_eq!(db.peek(t, &2), None);
        assert_eq!(db.stats().aborts, 1);
    }

    #[test]
    fn exclusive_lock_blocks_reader_until_commit() {
        let mut sim = Sim::new(3);
        let db = new_db();
        let t = db.create_table::<u64, u64>("t");
        let observed = Rc::new(RefCell::new(Vec::new()));

        // Writer takes the lock at t=0, holds it for 100ms, then commits.
        let wtxn = db.begin();
        let db_w = db.clone();
        db.lock(&mut sim, wtxn, vec![db.lock_key(t, &9)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            db_w.upsert(wtxn, t, 9, 42).unwrap();
            let db_w2 = db_w.clone();
            sim.schedule(SimDuration::from_millis(100), move |sim| {
                db_w2.commit(sim, wtxn, |_s, r| r.unwrap());
            });
        });
        // Reader arrives at t=10ms; must not observe the row until commit.
        let db_r = db.clone();
        let obs = Rc::clone(&observed);
        sim.schedule(SimDuration::from_millis(10), move |sim| {
            let rtxn = db_r.begin();
            let db_r2 = db_r.clone();
            db_r.read_locked(sim, rtxn, t, vec![9], LockMode::Shared, move |sim, values| {
                obs.borrow_mut().push((sim.now().as_millis_f64(), values.unwrap()[0]));
                db_r2.commit(sim, rtxn, |_s, r| r.unwrap());
            });
        });
        sim.run();
        let observed = observed.borrow();
        assert_eq!(observed.len(), 1);
        let (at_ms, value) = observed[0];
        assert!(at_ms >= 100.0, "reader finished at {at_ms}ms, before the writer committed");
        assert_eq!(value, Some(42));
    }

    #[test]
    fn lock_timeout_aborts_the_waiter_not_the_holder() {
        let mut sim = Sim::new(4);
        let db = Db::new(&StoreParams::default(), SimDuration::from_millis(50));
        let t = db.create_table::<u64, u64>("t");
        let result = Rc::new(RefCell::new(None));

        let holder = db.begin();
        let db1 = db.clone();
        db.lock(&mut sim, holder, vec![db.lock_key(t, &1)], LockMode::Exclusive, move |_s, r| {
            r.unwrap();
            // Never released: the waiter must time out.
            let _ = db1;
        });
        let waiter = db.begin();
        let db2 = db.clone();
        let out = Rc::clone(&result);
        sim.schedule(SimDuration::from_millis(1), move |sim| {
            let lk = db2.lock_key(t, &1);
            db2.lock(sim, waiter, vec![lk], LockMode::Exclusive, move |_s, r| {
                *out.borrow_mut() = Some(r);
            });
        });
        sim.run();
        let r = result.borrow().clone().expect("waiter continuation ran");
        assert_eq!(r, Err(StoreError::LockTimeout { txn: waiter }));
        assert_eq!(db.stats().lock_timeouts, 1);
        // Holder still owns the lock.
        assert!(db.holds(holder, &db.lock_key(t, &1), LockMode::Exclusive));
    }

    #[test]
    fn scan_sees_committed_rows_in_order() {
        let mut sim = Sim::new(5);
        let db = new_db();
        let t = db.create_table::<(u64, String), u64>("children");
        let txn = db.begin();
        let db2 = db.clone();
        let mut keys: Vec<LockKey> =
            ["b", "a", "c"].iter().map(|n| db.lock_key(t, &(7u64, n.to_string()))).collect();
        keys.sort();
        db.lock(&mut sim, txn, keys, LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            for (i, n) in ["b", "a", "c"].iter().enumerate() {
                db2.upsert(txn, t, (7, n.to_string()), i as u64).unwrap();
            }
            db2.commit(sim, txn, |_s, r| r.unwrap());
        });
        sim.run();
        let rows = Rc::new(RefCell::new(Vec::new()));
        let out = Rc::clone(&rows);
        db.scan(&mut sim, t, (7u64, String::new())..(8u64, String::new()), move |_s, r| {
            *out.borrow_mut() = r.into_iter().map(|((_, n), _)| n).collect::<Vec<String>>();
        });
        sim.run();
        assert_eq!(*rows.borrow(), vec!["a", "b", "c"]);
        assert_eq!(db.stats().scans, 1);
    }

    #[test]
    fn store_capacity_saturates_under_load() {
        // Submit far more locked reads than the shards can absorb
        // instantly; total time must scale with load (the station model is
        // actually charging).
        let mut sim = Sim::new(6);
        let db = new_db();
        let t = db.create_table::<u64, u64>("t");
        let completions = Rc::new(Cell::new(0u32));
        let n = 2000u64;
        for i in 0..n {
            let db2 = db.clone();
            let c = Rc::clone(&completions);
            sim.schedule(SimDuration::ZERO, move |sim| {
                let txn = db2.begin();
                let db3 = db2.clone();
                db2.read_locked(sim, txn, t, vec![i], LockMode::Shared, move |sim, r| {
                    r.unwrap();
                    db3.commit(sim, txn, move |_s, r| {
                        r.unwrap();
                    });
                    c.set(c.get() + 1);
                });
            });
        }
        sim.run();
        assert_eq!(completions.get(), n as u32);
        // 2000 batch reads over 4 shards x 10 workers at >=0.1ms each
        // cannot finish faster than ~5ms of simulated time.
        assert!(
            sim.now() > lambda_sim::SimTime::from_nanos(5_000_000),
            "finished suspiciously fast: {}",
            sim.now()
        );
    }

    #[test]
    fn operations_on_finished_txns_fail_cleanly() {
        let mut sim = Sim::new(7);
        let db = new_db();
        let t = db.create_table::<u64, u64>("t");
        let txn = db.begin();
        let db2 = db.clone();
        db.lock(&mut sim, txn, vec![db.lock_key(t, &1)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            db2.upsert(txn, t, 1, 1).unwrap();
            let db3 = db2.clone();
            db2.commit(sim, txn, move |sim, r| {
                r.unwrap();
                // Txn is gone: further use fails.
                assert!(matches!(
                    db3.upsert(txn, t, 2, 2),
                    Err(StoreError::UnknownTxn { .. }) | Err(StoreError::LockNotHeld { .. })
                ));
                let db4 = db3.clone();
                db3.commit(sim, txn, move |_s, r| {
                    assert_eq!(r, Err(StoreError::UnknownTxn { txn }));
                    let _ = db4;
                });
            });
        });
        sim.run();
    }

    /// A store with a single shard, so every key maps to shard 0 and
    /// crash tests don't depend on the key hash.
    fn one_shard_db(lock_timeout: SimDuration) -> Db {
        let params = StoreParams { shards: 1, ..StoreParams::default() };
        Db::new(&params, lock_timeout)
    }

    #[test]
    fn crashed_shard_rejects_locked_reads_until_takeover() {
        let mut sim = Sim::new(20);
        let db = one_shard_db(SimDuration::from_secs(5));
        let t = db.create_table::<u64, u64>("t");
        db.crash_shard(&mut sim, 0, SimDuration::from_millis(100));
        let results = Rc::new(RefCell::new(Vec::new()));
        for (at_ms, _) in [(10u64, ()), (200, ())] {
            let db2 = db.clone();
            let out = Rc::clone(&results);
            sim.schedule(SimDuration::from_millis(at_ms), move |sim| {
                let txn = db2.begin();
                let db3 = db2.clone();
                db2.read_locked(sim, txn, t, vec![1], LockMode::Shared, move |sim, r| {
                    out.borrow_mut().push(r.map(|_| ()));
                    db3.commit(sim, txn, |_s, _r| {});
                });
            });
        }
        sim.run();
        assert_eq!(
            *results.borrow(),
            vec![Err(StoreError::ShardUnavailable { shard: 0 }), Ok(())]
        );
        let stats = db.stats();
        assert_eq!(stats.shard_crashes, 1);
        assert_eq!(stats.unavailable_errors, 1);
        // The rejected reader's transaction was aborted, not leaked.
        assert_eq!(db.active_txn_count(), 0);
        assert_eq!(db.locked_rows(), 0);
    }

    #[test]
    fn shard_crash_aborts_inflight_writers_through_the_undo_log() {
        let mut sim = Sim::new(21);
        let db = one_shard_db(SimDuration::from_secs(5));
        let t = db.create_table::<u64, String>("t");
        // Seed a committed row.
        let seed = db.begin();
        let dbs = db.clone();
        db.lock(&mut sim, seed, vec![db.lock_key(t, &1)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            dbs.upsert(seed, t, 1, "committed".into()).unwrap();
            dbs.commit(sim, seed, |_s, r| r.unwrap());
        });
        sim.run();
        // A writer dirties the row, then the shard crashes under it.
        let txn = db.begin();
        let db2 = db.clone();
        db.lock(&mut sim, txn, vec![db.lock_key(t, &1)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            db2.upsert(txn, t, 1, "dirty".into()).unwrap();
            let db3 = db2.clone();
            sim.schedule(SimDuration::from_millis(5), move |sim| {
                db3.crash_shard(sim, 0, SimDuration::from_millis(50));
            });
        });
        sim.run();
        assert_eq!(db.peek(t, &1), Some("committed".to_string()));
        let stats = db.stats();
        assert_eq!(stats.failover_aborts, 1);
        assert_eq!(stats.aborts, 1);
        assert_eq!(db.active_txn_count(), 0);
        assert_eq!(db.locked_rows(), 0);
    }

    #[test]
    fn commit_to_a_down_shard_fails_and_rolls_back() {
        let mut sim = Sim::new(22);
        let db = one_shard_db(SimDuration::from_secs(5));
        let t = db.create_table::<u64, u64>("t");
        let result = Rc::new(RefCell::new(None));
        let txn = db.begin();
        let db2 = db.clone();
        let out = Rc::clone(&result);
        // Raw lock + upsert succeed (the lock manager is not the shard);
        // the crash lands before commit, which must then fail.
        db.lock(&mut sim, txn, vec![db.lock_key(t, &1)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            db2.upsert(txn, t, 1, 7).unwrap();
            db2.crash_shard(sim, 0, SimDuration::from_secs(1));
            // crash_shard already aborted the writer; a fresh writer that
            // slips a write in via a stale txn id sees UnknownTxn, so use a
            // second txn that writes while the shard is down.
            let db3 = db2.clone();
            let txn2 = db3.begin();
            let db4 = db3.clone();
            let out2 = Rc::clone(&out);
            db3.lock(sim, txn2, vec![db3.lock_key(t, &2)], LockMode::Exclusive, move |sim, r| {
                r.unwrap();
                db4.upsert(txn2, t, 2, 9).unwrap();
                db4.commit(sim, txn2, move |_s, r| {
                    *out2.borrow_mut() = Some(r);
                });
            });
        });
        sim.run();
        assert_eq!(*result.borrow(), Some(Err(StoreError::ShardUnavailable { shard: 0 })));
        assert_eq!(db.peek(t, &1), None, "first writer rolled back by the crash");
        assert_eq!(db.peek(t, &2), None, "second writer rolled back by the failed commit");
        assert_eq!(db.active_txn_count(), 0);
        assert_eq!(db.locked_rows(), 0);
        assert_eq!(db.stats().unavailable_errors, 1);
    }

    #[test]
    fn shard_crash_cancels_victims_pending_lock_sequences() {
        let mut sim = Sim::new(23);
        let db = one_shard_db(SimDuration::from_secs(5));
        let t = db.create_table::<u64, u64>("t");
        // H holds k2 forever.
        let holder = db.begin();
        let dbh = db.clone();
        db.lock(&mut sim, holder, vec![db.lock_key(t, &2)], LockMode::Exclusive, move |_s, r| {
            r.unwrap();
            let _ = dbh;
        });
        sim.run();
        // V writes k1 (so the crash victimizes it), then parks on k2.
        let victim = db.begin();
        let dbv = db.clone();
        let seq_result = Rc::new(RefCell::new(None));
        let out = Rc::clone(&seq_result);
        db.lock(&mut sim, victim, vec![db.lock_key(t, &1)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            dbv.upsert(victim, t, 1, 1).unwrap();
            let lk = dbv.lock_key(t, &2);
            let out2 = Rc::clone(&out);
            dbv.lock(sim, victim, vec![lk], LockMode::Exclusive, move |_s, r| {
                *out2.borrow_mut() = Some(r);
            });
            let dbc = dbv.clone();
            sim.schedule(SimDuration::from_millis(1), move |sim| {
                dbc.crash_shard(sim, 0, SimDuration::from_millis(10));
            });
        });
        sim.run();
        assert_eq!(
            *seq_result.borrow(),
            Some(Err(StoreError::ShardUnavailable { shard: 0 })),
            "the parked sequence was cancelled by the crash, not left to time out"
        );
        assert_eq!(db.pending_seq_count(), 0);
        assert!(db.holds(holder, &db.lock_key(t, &2), LockMode::Exclusive));
        assert!(!db.holds(victim, &db.lock_key(t, &1), LockMode::Exclusive));
        assert_eq!(db.peek(t, &1), None, "victim's write rolled back");
        assert_eq!(db.stats().failover_aborts, 1);
    }

    #[test]
    fn scheduled_outages_fire_at_their_instants() {
        use lambda_sim::fault::ShardOutage;
        let mut sim = Sim::new(24);
        let db = one_shard_db(SimDuration::from_secs(5));
        let _t = db.create_table::<u64, u64>("t");
        db.schedule_outages(
            &mut sim,
            &[ShardOutage {
                shard: 0,
                at: lambda_sim::SimTime::from_secs(1),
                takeover: SimDuration::from_millis(100),
            }],
        );
        sim.run();
        assert_eq!(db.stats().shard_crashes, 1);
    }

    /// A single-shard store on the durable (WAL-backed) backend.
    fn one_shard_durable_db(flush_ms: u64) -> Db {
        let params = StoreParams { shards: 1, ..StoreParams::default() };
        Db::new_durable(
            &params,
            SimDuration::from_secs(5),
            DurabilityConfig {
                flush_interval: SimDuration::from_millis(flush_ms),
                ..DurabilityConfig::default()
            },
        )
    }

    #[test]
    fn backend_kind_reflects_the_constructor() {
        assert_eq!(new_db().backend_kind(), BackendKind::InMemory);
        assert!(new_db().durability_stats().is_none());
        assert_eq!(one_shard_durable_db(2).backend_kind(), BackendKind::Durable);
    }

    #[test]
    fn durable_commit_survives_a_crash_via_wal_replay() {
        let mut sim = Sim::new(30);
        let db = one_shard_durable_db(2);
        let t = db.create_table::<u64, u64>("t");
        let txn = db.begin();
        let db2 = db.clone();
        db.lock(&mut sim, txn, vec![db.lock_key(t, &1)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            db2.upsert(txn, t, 1, 7).unwrap();
            db2.commit(sim, txn, |_s, r| r.unwrap());
        });
        sim.run();
        let ds = db.durability_stats().unwrap();
        assert_eq!(ds.wal_appends, 1);
        assert_eq!(ds.group_syncs, 1, "commit waited for its group-commit boundary");
        // Crash after the records are durable: recovery replays them and
        // the committed row survives.
        db.crash_shard(&mut sim, 0, SimDuration::from_secs(1));
        sim.run();
        assert_eq!(db.peek(t, &1), Some(7));
        let ds = db.durability_stats().unwrap();
        assert_eq!(ds.recoveries, 1);
        assert_eq!(ds.lost_records, 0);
        assert_eq!(ds.replayed_records, 1);
        assert_eq!(ds.lost_window_aborts, 0);
        assert_eq!(db.durability_violations(), Vec::<String>::new());
        assert_eq!(db.stats().failover_aborts, 0);
    }

    #[test]
    fn durable_crash_in_the_commit_window_loses_the_commit() {
        let mut sim = Sim::new(31);
        // Huge flush interval: the commit's sync leg is far in the future,
        // so a crash shortly after commit lands in the lost window.
        let db = one_shard_durable_db(10_000);
        let t = db.create_table::<u64, u64>("t");
        let result = Rc::new(RefCell::new(None));
        let txn = db.begin();
        let db2 = db.clone();
        let out = Rc::clone(&result);
        db.lock(&mut sim, txn, vec![db.lock_key(t, &1)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            db2.upsert(txn, t, 1, 7).unwrap();
            let out2 = Rc::clone(&out);
            db2.commit(sim, txn, move |_s, r| {
                *out2.borrow_mut() = Some(r);
            });
            let db3 = db2.clone();
            sim.schedule(SimDuration::from_millis(5), move |sim| {
                db3.crash_shard(sim, 0, SimDuration::from_millis(1));
            });
        });
        sim.run();
        assert_eq!(*result.borrow(), Some(Err(StoreError::ShardUnavailable { shard: 0 })));
        assert_eq!(db.peek(t, &1), None, "lost commit rolled back through the undo log");
        let ds = db.durability_stats().unwrap();
        assert_eq!(ds.lost_window_aborts, 1);
        assert_eq!(ds.lost_records, 1);
        assert_eq!(ds.recoveries, 1);
        assert_eq!(db.durability_violations(), Vec::<String>::new());
        let stats = db.stats();
        assert_eq!(stats.failover_aborts, 1);
        assert_eq!(stats.unavailable_errors, 1);
        assert_eq!(stats.commits, 0);
        assert_eq!(db.active_txn_count(), 0);
        assert_eq!(db.locked_rows(), 0);
    }

    #[test]
    fn durable_recovery_takes_the_costed_replay_window_not_takeover() {
        let mut sim = Sim::new(32);
        let db = one_shard_durable_db(2);
        let t = db.create_table::<u64, u64>("t");
        // The takeover argument is ignored by the durable backend: the
        // shard is down for detect_restart (500ms) + replay costs instead.
        db.crash_shard(&mut sim, 0, SimDuration::from_secs(30));
        let results = Rc::new(RefCell::new(Vec::new()));
        for at_ms in [100u64, 700] {
            let db2 = db.clone();
            let out = Rc::clone(&results);
            sim.schedule(SimDuration::from_millis(at_ms), move |sim| {
                let txn = db2.begin();
                let db3 = db2.clone();
                db2.read_locked(sim, txn, t, vec![1], LockMode::Shared, move |sim, r| {
                    out.borrow_mut().push(r.map(|_| ()));
                    db3.commit(sim, txn, |_s, _r| {});
                });
            });
        }
        sim.run();
        assert_eq!(
            *results.borrow(),
            vec![Err(StoreError::ShardUnavailable { shard: 0 }), Ok(())],
            "shard back after ~500ms recovery, long before the 30s takeover"
        );
    }

    #[test]
    fn durable_crash_right_after_bulk_load_keeps_the_namespace_and_aborts_writers() {
        let mut sim = Sim::new(33);
        let db = one_shard_durable_db(2);
        let t = db.create_table::<u64, u64>("t");
        db.bootstrap_bulk_load(t, (0..100u64).map(|k| (k, k * 10)));
        // A writer dirties a fresh row; the crash lands before its commit.
        let txn = db.begin();
        let db2 = db.clone();
        db.lock(&mut sim, txn, vec![db.lock_key(t, &1000)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            db2.upsert(txn, t, 1000, 1).unwrap();
            let db3 = db2.clone();
            sim.schedule(SimDuration::from_millis(1), move |sim| {
                db3.crash_shard(sim, 0, SimDuration::from_millis(50));
            });
        });
        sim.run();
        assert_eq!(db.peek(t, &1000), None, "in-flight write rolled back");
        assert_eq!(db.table_len(t), 100, "bootstrap rows intact");
        let ds = db.durability_stats().unwrap();
        assert_eq!(ds.wal_appends, 100);
        assert_eq!(ds.lost_records, 0, "bootstrap rows are durable by definition");
        assert_eq!(ds.replayed_records, 100);
        assert_eq!(db.durability_violations(), Vec::<String>::new());
        assert_eq!(db.stats().failover_aborts, 1);
        assert_eq!(db.active_txn_count(), 0);
        assert_eq!(db.locked_rows(), 0);
    }

    #[test]
    fn writers_serialize_on_the_same_row() {
        // Two writers increment the same counter concurrently; with 2PL the
        // final value must reflect both increments (no lost update).
        let mut sim = Sim::new(8);
        let db = new_db();
        let t = db.create_table::<u64, u64>("counter");
        // Seed.
        let seed = db.begin();
        let dbs = db.clone();
        db.lock(&mut sim, seed, vec![db.lock_key(t, &0)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            dbs.upsert(seed, t, 0, 0).unwrap();
            dbs.commit(sim, seed, |_s, r| r.unwrap());
        });
        sim.run();
        for _ in 0..2 {
            let db2 = db.clone();
            sim.schedule(SimDuration::ZERO, move |sim| {
                let txn = db2.begin();
                let db3 = db2.clone();
                db2.read_locked(sim, txn, t, vec![0], LockMode::Exclusive, move |sim, values| {
                    let v = values.unwrap()[0].unwrap();
                    db3.upsert(txn, t, 0, v + 1).unwrap();
                    db3.commit(sim, txn, |_s, r| r.unwrap());
                });
            });
        }
        sim.run();
        assert_eq!(db.peek(t, &0), Some(2));
    }
}
