//! Store persistence backends.
//!
//! The [`Db`](crate::Db) routes every durability-relevant event — bulk
//! loads, commit write sets, shard crashes — through a [`StoreBackend`].
//! Two implementations exist:
//!
//! * [`InMemoryBackend`] (the default): pure no-ops. A shard crash is
//!   modeled as a fixed takeover window, exactly the pre-existing fault
//!   semantics; no event, charge, or RNG draw is added anywhere, so
//!   simulation traces are bit-identical to a build without the trait
//!   seam.
//! * [`DurableBackend`]: every committed transaction's writes are appended
//!   to a per-shard `lambda-lsm` write-ahead log *before* the commit
//!   completes (WAL-ordered commit), made durable by group-commit syncs on
//!   a tunable flush interval, and a shard crash triggers deterministic
//!   WAL replay into rebuilt memtable/SSTable state instead of waiting
//!   out a modeled takeover constant. Commits whose WAL records were still
//!   in the lost window abort through the undo log, mirroring what a real
//!   redo-log store loses on power failure.
//!
//! ## The shadow model
//!
//! The durable backend does not replace the in-memory tables — they stay
//! the authoritative row store (values included). Instead it maintains a
//! per-shard **shadow** LSM tree keyed by `table-id ‖ encoded-key` with
//! synthetic fixed-size values, which is exactly the part of a persistent
//! store that matters for crash semantics: which keys exist, in what
//! order writes became durable, and how much log/compaction work recovery
//! must redo. After every crash the backend checks the recovered shadow's
//! key set against the authoritative tables (restricted to the crashed
//! shard) and records any divergence as a violation for the invariant
//! auditor.

use lambda_lsm::{LsmConfig, LsmStats, LsmTree};
use lambda_sim::{SimDuration, SimTime};

use crate::db::shard_of;
use crate::key::EncodedKey;
use crate::table::{AnyTable, TableId};
use crate::txn::TxnId;

/// Which persistence backend a [`Db`](crate::Db) runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Volatile tables; crashes cost a fixed takeover window (default).
    InMemory,
    /// WAL-backed shadow persistence with crash recovery by replay.
    Durable,
}

/// Tuning for the durable backend.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Group-commit boundary: a commit's WAL records become durable at the
    /// next multiple of this interval (the `fsync` batching knob).
    pub flush_interval: SimDuration,
    /// Fixed crash-to-replay-start cost: failure detection plus process
    /// restart of the shard's store node.
    pub detect_restart: SimDuration,
    /// Replay cost per surviving WAL record.
    pub replay_per_record: SimDuration,
    /// Replay cost per byte of WAL payload replayed plus SSTable bytes
    /// written by replay-triggered flushes/compactions.
    pub replay_per_byte: SimDuration,
    /// Shadow LSM tuning (memtable size governs flush-induced
    /// checkpointing; see [`LsmConfig`]).
    pub lsm: LsmConfig,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            flush_interval: SimDuration::from_millis(2),
            detect_restart: SimDuration::from_millis(500),
            replay_per_record: SimDuration::from_micros(2),
            replay_per_byte: SimDuration::from_nanos(20),
            lsm: LsmConfig::default(),
        }
    }
}

/// Cumulative counters kept by the durable backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended (commit writes + bootstrap rows).
    pub wal_appends: u64,
    /// Group-commit syncs that made at least one record durable.
    pub group_syncs: u64,
    /// Commits aborted because a crash lost their WAL records.
    pub lost_window_aborts: u64,
    /// Crash recoveries performed.
    pub recoveries: u64,
    /// WAL records replayed across all recoveries.
    pub replayed_records: u64,
    /// WAL records lost across all recoveries (the lost windows).
    pub lost_records: u64,
    /// Total simulated recovery downtime, in nanoseconds.
    pub recovery_nanos_total: u64,
    /// Longest single recovery, in nanoseconds.
    pub recovery_nanos_max: u64,
}

/// One row write captured from a transaction, replayed into the shadow WAL
/// at commit time.
pub(crate) struct ShadowWrite {
    pub(crate) table: TableId,
    pub(crate) shard: u32,
    pub(crate) key: EncodedKey,
    pub(crate) val_len: u32,
    pub(crate) tombstone: bool,
    /// Whether the row existed before this write — what compensation must
    /// restore if the commit is lost to a crash.
    pub(crate) prior_exists: bool,
}

/// What a shard crash means for the caller.
pub(crate) enum CrashOutcome {
    /// In-memory semantics: wait out the caller-provided takeover window.
    Takeover,
    /// Durable semantics: the shard is down while WAL replay runs.
    Recovered {
        /// Deterministically costed recovery downtime.
        down_for: SimDuration,
        /// Mid-commit transactions whose WAL records on the crashed shard
        /// were still in the lost window; the caller must abort them
        /// through their undo logs.
        lost_txns: Vec<TxnId>,
    },
}

/// Outcome of a commit as far as durability is concerned.
pub(crate) enum CommitFate {
    /// The backend was not tracking this commit (in-memory backend, or a
    /// read-only transaction).
    Untracked,
    /// The commit's WAL records survived; the commit stands.
    Durable,
    /// A crash on `shard` lost the commit's WAL records; the transaction
    /// was already rolled back and the commit must report failure.
    Lost {
        /// The shard whose crash lost the records.
        shard: u32,
    },
}

/// The seam between the transactional store and its persistence model.
pub(crate) trait StoreBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Records one pre-run bootstrap row (already durable by definition).
    fn bootstrap_row(&mut self, table: TableId, shard: u32, enc: &[u8], val_len: usize);

    /// Appends a committing transaction's writes to the WAL (commit order =
    /// log order). Returns the sim-time instant at which the records become
    /// durable (the next group-commit boundary), or `None` if the backend
    /// does not log (in-memory).
    fn begin_commit(
        &mut self,
        now: SimTime,
        txn: TxnId,
        writes: Vec<ShadowWrite>,
    ) -> Option<SimTime>;

    /// Group-commit boundary reached: everything appended so far becomes
    /// durable.
    fn sync_boundary(&mut self, txn: TxnId);

    /// Resolves a finishing commit against any crash that happened since
    /// [`StoreBackend::begin_commit`].
    fn finish_commit(&mut self, txn: TxnId) -> CommitFate;

    /// Crashes `shard`: volatile state is lost, recovery runs.
    fn crash_shard(&mut self, shard: u32) -> CrashOutcome;

    /// After the caller has aborted every crash victim: checks the
    /// recovered shadow state against the authoritative tables, recording
    /// divergence as violations.
    fn post_crash_check(&mut self, shard: u32, shard_count: usize, tables: &[Box<dyn AnyTable>]);

    /// Accumulated consistency violations (auditor feed; empty = healthy).
    fn violations(&self) -> &[String];

    /// Durability counters, if this backend keeps them.
    fn durability_stats(&self) -> Option<DurabilityStats>;

    /// Aggregated shadow-LSM counters, if this backend keeps them.
    fn lsm_stats(&self) -> Option<LsmStats>;
}

/// The default backend: volatile tables, fixed-takeover crash model, zero
/// added events.
pub(crate) struct InMemoryBackend;

impl StoreBackend for InMemoryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::InMemory
    }
    fn bootstrap_row(&mut self, _table: TableId, _shard: u32, _enc: &[u8], _val_len: usize) {}
    fn begin_commit(
        &mut self,
        _now: SimTime,
        _txn: TxnId,
        _writes: Vec<ShadowWrite>,
    ) -> Option<SimTime> {
        None
    }
    fn sync_boundary(&mut self, _txn: TxnId) {}
    fn finish_commit(&mut self, _txn: TxnId) -> CommitFate {
        CommitFate::Untracked
    }
    fn crash_shard(&mut self, _shard: u32) -> CrashOutcome {
        CrashOutcome::Takeover
    }
    fn post_crash_check(
        &mut self,
        _shard: u32,
        _shard_count: usize,
        _tables: &[Box<dyn AnyTable>],
    ) {
    }
    fn violations(&self) -> &[String] {
        &[]
    }
    fn durability_stats(&self) -> Option<DurabilityStats> {
        None
    }
    fn lsm_stats(&self) -> Option<LsmStats> {
        None
    }
}

/// A commit whose WAL records are appended but whose completion callback
/// has not run yet — the window in which a crash can lose it.
struct PendingCommit {
    txn: TxnId,
    writes: Vec<ShadowWrite>,
    /// Highest WAL sequence number this commit appended per shard.
    marks: Vec<(u32, u64)>,
    /// Set when a crash lost the commit's records on that shard.
    lost: Option<u32>,
}

/// WAL-backed persistence: per-shard shadow LSM trees fed in commit order.
pub(crate) struct DurableBackend {
    config: DurabilityConfig,
    shards: Vec<LsmTree>,
    pending: Vec<PendingCommit>,
    stats: DurabilityStats,
    violations: Vec<String>,
    key_scratch: Vec<u8>,
    val_scratch: Vec<u8>,
}

impl DurableBackend {
    pub(crate) fn new(config: DurabilityConfig, shard_count: usize) -> Self {
        DurableBackend {
            shards: (0..shard_count).map(|_| LsmTree::new(config.lsm.clone())).collect(),
            config,
            pending: Vec::new(),
            stats: DurabilityStats::default(),
            violations: Vec::new(),
            key_scratch: Vec::new(),
            val_scratch: Vec::new(),
        }
    }

    /// Shadow row key: table id (big-endian) followed by the encoded row
    /// key — injective because the prefix is fixed-width.
    fn shadow_key<'a>(scratch: &'a mut Vec<u8>, table: TableId, enc: &[u8]) -> &'a [u8] {
        scratch.clear();
        scratch.extend_from_slice(&table.raw().to_be_bytes());
        scratch.extend_from_slice(enc);
        scratch
    }

    /// Appends one shadow write to its shard's WAL, returning the record's
    /// sequence number.
    fn append_write(&mut self, txn: TxnId, w: &ShadowWrite) -> u64 {
        let key = Self::shadow_key(&mut self.key_scratch, w.table, w.key.as_slice());
        let tree = &mut self.shards[w.shard as usize];
        self.stats.wal_appends += 1;
        if w.tombstone {
            tree.delete(key)
        } else {
            let val = {
                self.val_scratch.clear();
                self.val_scratch.extend_from_slice(&txn.raw().to_le_bytes());
                self.val_scratch.resize((w.val_len as usize).max(8), 0);
                &self.val_scratch
            };
            tree.put(key, val)
        }
    }

    /// Undoes the shadow effect of a lost commit's writes: each key's
    /// first write (log order) carries the pre-transaction existence, so
    /// restoring it mirrors what the undo log does to the authoritative
    /// tables. New compensation records are synced immediately — the
    /// failover coordinator durably records the abort.
    fn compensate_lost(&mut self, lost: &[usize]) {
        for &pi in lost {
            let writes = std::mem::take(&mut self.pending[pi].writes);
            let txn = self.pending[pi].txn;
            for (i, w) in writes.iter().enumerate() {
                let first_for_key = writes[..i]
                    .iter()
                    .all(|p| !(p.table == w.table && p.key == w.key && p.shard == w.shard));
                if !first_for_key {
                    continue;
                }
                let key = Self::shadow_key(&mut self.key_scratch, w.table, w.key.as_slice());
                let tree = &mut self.shards[w.shard as usize];
                if w.prior_exists {
                    let val = {
                        self.val_scratch.clear();
                        self.val_scratch.extend_from_slice(&txn.raw().to_le_bytes());
                        self.val_scratch.resize((w.val_len as usize).max(8), 0);
                        &self.val_scratch
                    };
                    tree.put(key, val);
                } else {
                    tree.delete(key);
                }
                tree.sync_wal();
            }
        }
    }
}

impl StoreBackend for DurableBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Durable
    }

    fn bootstrap_row(&mut self, table: TableId, shard: u32, enc: &[u8], val_len: usize) {
        let key = Self::shadow_key(&mut self.key_scratch, table, enc);
        let tree = &mut self.shards[shard as usize];
        self.val_scratch.clear();
        self.val_scratch.resize(val_len.max(8), 0);
        tree.put(key, &self.val_scratch);
        // Bulk loads land durable: the loader syncs before the run starts.
        tree.sync_wal();
        self.stats.wal_appends += 1;
    }

    fn begin_commit(
        &mut self,
        now: SimTime,
        txn: TxnId,
        writes: Vec<ShadowWrite>,
    ) -> Option<SimTime> {
        if writes.is_empty() {
            return None;
        }
        let mut marks: Vec<(u32, u64)> = Vec::new();
        for w in &writes {
            let seq = self.append_write(txn, w);
            let shard = w.shard;
            match marks.iter_mut().find(|(s, _)| *s == shard) {
                Some(m) => m.1 = seq,
                None => marks.push((shard, seq)),
            }
        }
        self.pending.push(PendingCommit { txn, writes, marks, lost: None });
        let interval = self.config.flush_interval.as_nanos().max(1);
        Some(SimTime::from_nanos((now.as_nanos() / interval + 1) * interval))
    }

    fn sync_boundary(&mut self, _txn: TxnId) {
        let mut any = false;
        for tree in &mut self.shards {
            if tree.last_seq() > tree.durable_seq() {
                any = true;
            }
            tree.sync_wal();
        }
        if any {
            self.stats.group_syncs += 1;
        }
    }

    fn finish_commit(&mut self, txn: TxnId) -> CommitFate {
        let Some(pos) = self.pending.iter().position(|p| p.txn == txn) else {
            return CommitFate::Untracked;
        };
        // `remove`, not `swap_remove`: pending order is log order and must
        // stay deterministic for crash processing.
        let p = self.pending.remove(pos);
        match p.lost {
            Some(shard) => {
                self.stats.lost_window_aborts += 1;
                CommitFate::Lost { shard }
            }
            None => CommitFate::Durable,
        }
    }

    fn crash_shard(&mut self, shard: u32) -> CrashOutcome {
        // A commit is lost iff any of its records on the crashed shard sits
        // above the durable horizon. Group commits sync whole WAL prefixes,
        // so a commit's records there are all-durable or all-lost — except
        // when a flush checkpointed part of the run, which compensation
        // below repairs.
        let durable = self.shards[shard as usize].durable_seq();
        let mut lost_idx = Vec::new();
        let mut lost_txns = Vec::new();
        for (i, p) in self.pending.iter_mut().enumerate() {
            let lost_here =
                p.lost.is_none() && p.marks.iter().any(|&(s, seq)| s == shard && seq > durable);
            if lost_here {
                p.lost = Some(shard);
                lost_idx.push(i);
                lost_txns.push(p.txn);
            }
        }
        // Discard volatile state and replay the surviving WAL prefix.
        let report = self.shards[shard as usize].crash_and_recover();
        // Undo lost commits' already-durable traces (on this shard a flush
        // may have checkpointed a prefix of the commit's records; on other
        // shards the records may be fully durable).
        self.compensate_lost(&lost_idx);
        let down_for = self.config.detect_restart
            + self.config.replay_per_record * report.replayed_records
            + self.config.replay_per_byte * (report.replayed_bytes + report.bytes_compacted);
        self.stats.recoveries += 1;
        self.stats.replayed_records += report.replayed_records;
        self.stats.lost_records += report.lost_records;
        self.stats.recovery_nanos_total += down_for.as_nanos();
        self.stats.recovery_nanos_max = self.stats.recovery_nanos_max.max(down_for.as_nanos());
        lost_txns.sort_unstable();
        CrashOutcome::Recovered { down_for, lost_txns }
    }

    fn post_crash_check(&mut self, shard: u32, shard_count: usize, tables: &[Box<dyn AnyTable>]) {
        // Authoritative key set of the crashed shard, shadow-key encoded.
        let mut expect: Vec<Vec<u8>> = Vec::new();
        for (tid, table) in tables.iter().enumerate() {
            let prefix = (tid as u32).to_be_bytes();
            table.for_each_encoded_key(&mut |enc| {
                if shard_of(shard_count, enc) == shard as usize {
                    let mut k = Vec::with_capacity(4 + enc.len());
                    k.extend_from_slice(&prefix);
                    k.extend_from_slice(enc);
                    expect.push(k);
                }
            });
        }
        expect.sort_unstable();
        let got: Vec<Vec<u8>> = self.shards[shard as usize]
            .scan_all()
            .into_iter()
            .map(|(k, _)| k.to_vec())
            .collect();
        if expect != got {
            let missing = expect.iter().filter(|k| !got.contains(k)).count();
            let extra = got.iter().filter(|k| !expect.contains(k)).count();
            self.violations.push(format!(
                "shard {shard} post-recovery divergence: tables hold {} keys, shadow holds {} \
                 ({missing} missing from shadow, {extra} extra)",
                expect.len(),
                got.len(),
            ));
        }
    }

    fn violations(&self) -> &[String] {
        &self.violations
    }

    fn durability_stats(&self) -> Option<DurabilityStats> {
        Some(self.stats)
    }

    fn lsm_stats(&self) -> Option<LsmStats> {
        let mut total = LsmStats::default();
        for tree in &self.shards {
            let s = tree.stats();
            total.user_writes += s.user_writes;
            total.user_reads += s.user_reads;
            total.bytes_compacted += s.bytes_compacted;
            total.bytes_ingested += s.bytes_ingested;
            total.flushes += s.flushes;
            total.compactions += s.compactions;
            total.bloom_skips += s.bloom_skips;
            total.tables_probed += s.tables_probed;
        }
        Some(total)
    }
}
