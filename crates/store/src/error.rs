//! Error types for the metadata store.

use std::error::Error;
use std::fmt;

use crate::txn::TxnId;

/// Errors returned by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The transaction waited too long for a lock and was aborted.
    ///
    /// Callers (NameNodes) treat this like HopsFS treats a deadlock-victim
    /// abort: release everything and retry the operation.
    LockTimeout {
        /// The aborted transaction.
        txn: TxnId,
    },
    /// The transaction id is unknown (already committed/aborted, or never
    /// begun).
    UnknownTxn {
        /// The offending transaction id.
        txn: TxnId,
    },
    /// A write was attempted on a row whose exclusive lock is not held by
    /// the writing transaction — a 2PL discipline violation by the caller.
    LockNotHeld {
        /// The offending transaction.
        txn: TxnId,
        /// Human-readable description of the row.
        row: String,
    },
    /// The transaction was aborted (e.g. chosen as a timeout victim) and
    /// can no longer be used.
    Aborted {
        /// The aborted transaction.
        txn: TxnId,
    },
    /// The operation touched a shard that is down and waiting for its
    /// node-group replica to finish taking over (fault injection).
    ///
    /// The transaction involved (if any) has been aborted; callers retry
    /// the whole operation, as NDB clients do after a data-node failure.
    ShardUnavailable {
        /// The crashed shard.
        shard: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::LockTimeout { txn } => {
                write!(f, "transaction {txn} timed out waiting for a lock")
            }
            StoreError::UnknownTxn { txn } => write!(f, "unknown transaction {txn}"),
            StoreError::LockNotHeld { txn, row } => {
                write!(f, "transaction {txn} wrote row {row} without an exclusive lock")
            }
            StoreError::Aborted { txn } => write!(f, "transaction {txn} was aborted"),
            StoreError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is unavailable (failover in progress)")
            }
        }
    }
}

impl Error for StoreError {}

/// Convenience result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;
