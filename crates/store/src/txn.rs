//! Transaction identity and per-transaction bookkeeping.

use std::collections::BTreeMap;
use std::fmt;

/// Identifies one transaction within a [`Db`](crate::Db).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(u64);

impl TxnId {
    /// Builds a transaction id from its raw counter value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        TxnId(raw)
    }

    /// The raw counter value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// An undo action restoring one row to its pre-transaction state.
pub(crate) type UndoOp = Box<dyn FnOnce(&mut Vec<Box<dyn crate::table::AnyTable>>)>;

/// Lifecycle of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxnPhase {
    Active,
    Aborted,
}

/// Per-transaction state tracked by the [`Db`](crate::Db).
pub(crate) struct TxnState {
    pub(crate) phase: TxnPhase,
    /// Undo log, applied in reverse on abort.
    pub(crate) undo: Vec<UndoOp>,
    /// Rows written per shard (drives the commit capacity charge).
    pub(crate) writes_per_shard: BTreeMap<u32, u32>,
    /// Write set in program order, handed to the durable backend's WAL at
    /// commit time. Stays empty under the in-memory backend.
    pub(crate) shadow_log: Vec<crate::backend::ShadowWrite>,
}

impl TxnState {
    pub(crate) fn new() -> Self {
        TxnState {
            phase: TxnPhase::Active,
            undo: Vec::new(),
            writes_per_shard: BTreeMap::new(),
            shadow_log: Vec::new(),
        }
    }

    pub(crate) fn total_writes(&self) -> u32 {
        self.writes_per_shard.values().sum()
    }
}

impl fmt::Debug for TxnState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnState")
            .field("phase", &self.phase)
            .field("undo_entries", &self.undo.len())
            .field("writes_per_shard", &self.writes_per_shard)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_ids_order_by_creation() {
        assert!(TxnId::new(1) < TxnId::new(2));
        assert_eq!(TxnId::new(7).raw(), 7);
        assert_eq!(TxnId::new(7).to_string(), "txn#7");
    }

    #[test]
    fn txn_state_counts_writes() {
        let mut st = TxnState::new();
        *st.writes_per_shard.entry(0).or_default() += 2;
        *st.writes_per_shard.entry(3).or_default() += 1;
        assert_eq!(st.total_writes(), 3);
        assert_eq!(st.phase, TxnPhase::Active);
    }
}
