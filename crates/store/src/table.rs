//! Typed tables behind a type-erased registry.
//!
//! The [`Db`](crate::Db) owns a heterogeneous set of tables (inodes,
//! children index, blocks, leases, …). Each table is an arena-backed
//! [`BpTree`] wrapped in a [`TypedTable`]; the registry stores them as
//! `dyn AnyTable` and hands callers a typed, copyable
//! [`TableHandle<K, V>`] that restores the concrete type on access.
//!
//! The engine swap (std `BTreeMap` → [`BpTree`], see the
//! [`bptree`](crate::bptree) module docs) is invisible at this layer:
//! `TypedTable` keeps the exact same surface and semantics, and
//! `tests/engine_differential.rs` pins the equivalence against the std
//! map. The pre-overhaul store in [`baseline`](crate::baseline) still
//! runs on `BTreeMap`, serving as the end-to-end oracle.

use std::any::Any;
use std::fmt;
use std::marker::PhantomData;
use std::ops::RangeBounds;
use std::rc::Rc;

use crate::bptree::BpTree;
use crate::key::KeyCodec;

/// Identifies a table within one [`Db`](crate::Db).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(u32);

impl TableId {
    /// Builds a table id from its raw index.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        TableId(raw)
    }

    /// The raw index.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

/// A typed, copyable reference to a table created by
/// [`Db::create_table`](crate::Db::create_table).
pub struct TableHandle<K, V> {
    id: TableId,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K, V> TableHandle<K, V> {
    pub(crate) fn new(id: TableId) -> Self {
        TableHandle { id, _marker: PhantomData }
    }

    /// The underlying table id.
    #[must_use]
    pub fn id(&self) -> TableId {
        self.id
    }
}

impl<K, V> Clone for TableHandle<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K, V> Copy for TableHandle<K, V> {}
impl<K, V> fmt::Debug for TableHandle<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TableHandle({})", self.id)
    }
}

/// Object-safe view of a table, for the registry.
pub(crate) trait AnyTable {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// The name as a shared handle (inventory reporting without a deep
    /// string copy per call).
    fn name_shared(&self) -> Rc<str>;
    fn len(&self) -> usize;
    /// Repacks the backing B-tree into dense nodes (see
    /// [`TypedTable::repack`]).
    fn repack(&mut self);
    /// Visits every row's encoded key in ascending order — the durable
    /// backend's post-crash consistency check compares these against the
    /// recovered shadow key set.
    fn for_each_encoded_key(&self, visit: &mut dyn FnMut(&[u8]));
}

/// A concrete table: an ordered map from `K` to `V`.
#[derive(Debug)]
pub(crate) struct TypedTable<K, V> {
    name: Rc<str>,
    pub(crate) rows: BpTree<K, V>,
}

impl<K: KeyCodec, V: Clone + 'static> TypedTable<K, V> {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        TypedTable { name: name.into().into(), rows: BpTree::new() }
    }

    pub(crate) fn get(&self, key: &K) -> Option<&V> {
        self.rows.get(key)
    }

    pub(crate) fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.rows.insert(key, value)
    }

    pub(crate) fn remove(&mut self, key: &K) -> Option<V> {
        self.rows.remove(key)
    }

    pub(crate) fn scan<R: RangeBounds<K>>(&self, range: R) -> Vec<(K, V)> {
        self.rows.range(&range).map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Visits every row in `range` in ascending key order without
    /// materializing anything — the allocation-free sibling of
    /// [`scan`](TypedTable::scan) for the hot listing/read paths.
    pub(crate) fn scan_with<R: RangeBounds<K>>(&self, range: R, visit: impl FnMut(&K, &V)) {
        self.rows.scan_with(&range, visit);
    }

    pub(crate) fn count_range<R: RangeBounds<K>>(&self, range: R) -> usize {
        self.rows.count_range(&range)
    }

    /// Rebuilds the backing B+ tree from its own (already sorted) contents.
    ///
    /// Random insertion splits nodes at ~50% and lazy deletion leaves
    /// sparse nodes behind, so a churned table can carry up to 2× the node
    /// memory it needs. The rebuild streams the sorted contents through the
    /// engine's dense bulk build ([`BpTree::from_ascending`]), packing
    /// every node 100% full. Purely a memory/locality transform: iteration
    /// order, lookups, and every observable behavior are unchanged.
    fn repack(&mut self) {
        self.rows.repack();
    }

    /// Builds the table directly from a strictly ascending stream of fresh
    /// rows, merged with whatever the table already holds.
    ///
    /// This is the streaming successor to insert-then-[`repack`]: instead
    /// of pushing every row through `insert` (rightmost-edge splits,
    /// half-full nodes) and densifying afterwards, the sorted stream goes
    /// straight into the engine's dense bulk build. The resulting table is
    /// logically identical to inserting the same rows and repacking — same
    /// contents, same iteration order, same node occupancy — which
    /// `tests/bulk_build.rs` pins differentially.
    ///
    /// [`repack`]: TypedTable::repack
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not strictly ascending by key or contains a key
    /// the table already holds (bootstrap streams are collision-free by
    /// construction; a violation here is a loader bug, mirroring
    /// `bootstrap_add`'s name-collision panic).
    pub(crate) fn bulk_build(&mut self, rows: impl Iterator<Item = (K, V)>) {
        let name = Rc::clone(&self.name);
        let mut last: Option<K> = None;
        let rows = rows.inspect(move |(k, _)| {
            if let Some(prev) = &last {
                assert!(
                    prev < k,
                    "bulk_build stream for table {name} is not strictly ascending"
                );
            }
            last = Some(k.clone());
        });
        let old = std::mem::take(&mut self.rows);
        if old.is_empty() {
            self.rows = BpTree::from_ascending(rows);
            return;
        }
        let name = Rc::clone(&self.name);
        self.rows = BpTree::from_ascending(MergeAscending {
            old: old.into_entries().peekable(),
            new: rows.peekable(),
            name,
        });
    }
}

/// Merges two ascending `(key, value)` streams into one, panicking on a
/// key present in both (bulk loads must not overwrite existing rows).
struct MergeAscending<K, V, A: Iterator<Item = (K, V)>, B: Iterator<Item = (K, V)>> {
    old: std::iter::Peekable<A>,
    new: std::iter::Peekable<B>,
    name: Rc<str>,
}

impl<K: Ord, V, A: Iterator<Item = (K, V)>, B: Iterator<Item = (K, V)>> Iterator
    for MergeAscending<K, V, A, B>
{
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        match (self.old.peek(), self.new.peek()) {
            (Some((a, _)), Some((b, _))) => match a.cmp(b) {
                std::cmp::Ordering::Less => self.old.next(),
                std::cmp::Ordering::Greater => self.new.next(),
                std::cmp::Ordering::Equal => {
                    panic!("bulk_build key collision in table {}", self.name)
                }
            },
            (Some(_), None) => self.old.next(),
            (None, _) => self.new.next(),
        }
    }

    // Collisions panic rather than merge, so the output length is the sum
    // of the inputs'. An exact hint here lets the bulk build reserve its
    // arenas in one allocation.
    fn size_hint(&self) -> (usize, Option<usize>) {
        let (al, ah) = self.old.size_hint();
        let (bl, bh) = self.new.size_hint();
        (al + bl, ah.zip(bh).map(|(a, b)| a + b))
    }
}

impl<K: KeyCodec, V: Clone + 'static> AnyTable for TypedTable<K, V> {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn name_shared(&self) -> Rc<str> {
        Rc::clone(&self.name)
    }
    fn len(&self) -> usize {
        self.rows.len()
    }
    fn repack(&mut self) {
        TypedTable::repack(self);
    }
    fn for_each_encoded_key(&self, visit: &mut dyn FnMut(&[u8])) {
        let mut buf = Vec::new();
        self.rows.scan_with(&(..), |k: &K, _| {
            buf.clear();
            k.encode_into(&mut buf);
            visit(&buf);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_table_basic_crud() {
        let mut t: TypedTable<u64, String> = TypedTable::new("t");
        assert_eq!(t.insert(1, "a".into()), None);
        assert_eq!(t.insert(1, "b".into()), Some("a".into()));
        assert_eq!(t.get(&1), Some(&"b".to_string()));
        assert_eq!(t.remove(&1), Some("b".into()));
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn scan_returns_ordered_range() {
        let mut t: TypedTable<(u64, String), u64> = TypedTable::new("children");
        t.insert((1, "c".into()), 10);
        t.insert((1, "a".into()), 11);
        t.insert((2, "b".into()), 12);
        t.insert((1, "b".into()), 13);
        let rows = t.scan((1, String::new())..(2, String::new()));
        let names: Vec<&str> = rows.iter().map(|((_, n), _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(t.count_range((1, String::new())..(2, String::new())), 3);
    }

    #[test]
    fn any_table_round_trips_through_registry_types() {
        let t: Box<dyn AnyTable> = Box::new(TypedTable::<u64, u64>::new("x"));
        assert_eq!(&*t.name_shared(), "x");
        assert!(t.as_any().downcast_ref::<TypedTable<u64, u64>>().is_some());
        assert!(t.as_any().downcast_ref::<TypedTable<u64, String>>().is_none());
    }

    #[test]
    fn handles_are_copy_and_debuggable() {
        let h: TableHandle<u64, u64> = TableHandle::new(TableId::new(3));
        let h2 = h;
        assert_eq!(h.id(), h2.id());
        assert_eq!(format!("{h:?}"), "TableHandle(table#3)");
    }
}
