//! The pre-overhaul store hot path, retained as a benchmark baseline.
//!
//! This module is a self-contained copy of the lock manager and the
//! transactional store **as they existed before the metadata-plane hot-path
//! overhaul**: lock keys carry an owned `Vec<u8>` per row, every lock batch
//! clones its encoded keys into a `Vec<Vec<u8>>` for the capacity charge,
//! pending lock sequences live in hash maps keyed by a monotonically
//! growing sequence id, and commit clones the per-shard write map.
//!
//! `bench_metadata` drives this implementation and the current [`crate::Db`]
//! through identical transaction scripts to measure the speedup. Its value
//! is standing still: do not "improve" this module, and do not use it from
//! protocol code.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use lambda_sim::params::StoreParams;
use lambda_sim::{Sim, SimDuration, Station, StationRef};

use crate::error::{StoreError, StoreResult};
use crate::key::KeyCodec;
use crate::table::{AnyTable, TableHandle, TableId, TypedTable};
use crate::txn::{TxnId, TxnPhase, TxnState};
use crate::DbStats;
pub use crate::{Acquire, LockMode, WaiterToken};

/// The pre-overhaul lock key: table plus an owned, heap-allocated encoding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockKey {
    /// Owning table.
    pub table: TableId,
    /// Order-preserving encoded primary key (always heap-allocated).
    pub key: Vec<u8>,
}

impl fmt::Display for LockKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{:02x?}]", self.table, self.key)
    }
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    token: WaiterToken,
}

#[derive(Debug, Default)]
struct LockState {
    holders: Vec<(TxnId, LockMode)>,
    waiters: VecDeque<Waiter>,
}

impl LockState {
    fn holder_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.holders.iter().find(|(t, _)| *t == txn).map(|(_, m)| *m)
    }

    fn compatible_with_holders(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Exclusive => {
                self.holders.is_empty() || (self.holders.len() == 1 && self.holders[0].0 == txn)
            }
            LockMode::Shared => self.holders.iter().all(|(_, m)| *m == LockMode::Shared),
        }
    }

    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Exclusive => {
                self.holders.is_empty() || (self.holders.len() == 1 && self.holders[0].0 == txn)
            }
            LockMode::Shared => {
                let no_x_holder = self.holders.iter().all(|(_, m)| *m == LockMode::Shared);
                let no_queued_writer = self.waiters.iter().all(|w| w.mode != LockMode::Exclusive)
                    || self.holder_mode(txn).is_some();
                no_x_holder && no_queued_writer
            }
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        match self.holders.iter_mut().find(|(t, _)| *t == txn) {
            Some(entry) => entry.1 = entry.1.max(mode),
            None => self.holders.push((txn, mode)),
        }
    }
}

/// The pre-overhaul lock manager (identical policy, `Vec<u8>`-keyed).
#[derive(Debug, Default)]
pub struct LockManager {
    locks: HashMap<LockKey, LockState>,
    held_by: HashMap<TxnId, Vec<LockKey>>,
    next_token: WaiterToken,
}

impl LockManager {
    /// Creates an empty manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `txn` holds `key` with at least `mode` strength.
    #[must_use]
    pub fn holds(&self, txn: TxnId, key: &LockKey, mode: LockMode) -> bool {
        self.locks.get(key).and_then(|s| s.holder_mode(txn)).is_some_and(|held| held >= mode)
    }

    /// Attempts to acquire `key` in `mode` for `txn`.
    pub fn acquire(&mut self, txn: TxnId, key: &LockKey, mode: LockMode) -> (Acquire, WaiterToken) {
        let state = self.locks.entry(key.clone()).or_default();
        if state.holder_mode(txn).is_some_and(|held| held >= mode) {
            return (Acquire::Granted, 0);
        }
        if state.grantable(txn, mode) {
            let newly = state.holder_mode(txn).is_none();
            state.grant(txn, mode);
            if newly {
                self.held_by.entry(txn).or_default().push(key.clone());
            }
            (Acquire::Granted, 0)
        } else {
            self.next_token += 1;
            let token = self.next_token;
            let waiter = Waiter { txn, mode, token };
            if state.holder_mode(txn).is_some() {
                state.waiters.push_front(waiter);
            } else {
                state.waiters.push_back(waiter);
            }
            (Acquire::Wait, token)
        }
    }

    /// Removes a queued waiter; grants that become possible are reported
    /// like a release.
    pub fn cancel_waiter(
        &mut self,
        key: &LockKey,
        token: WaiterToken,
        granted: &mut Vec<WaiterToken>,
    ) -> bool {
        let Some(state) = self.locks.get_mut(key) else { return false };
        let before = state.waiters.len();
        state.waiters.retain(|w| w.token != token);
        let removed = state.waiters.len() != before;
        if removed {
            Self::pump(state, &mut self.held_by, key, granted);
            if state.holders.is_empty() && state.waiters.is_empty() {
                self.locks.remove(key);
            }
        }
        removed
    }

    /// Releases every lock held by `txn`, returning newly granted waiters.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<WaiterToken> {
        let mut granted = Vec::new();
        let keys = self.held_by.remove(&txn).unwrap_or_default();
        for key in keys {
            if let Some(state) = self.locks.get_mut(&key) {
                state.holders.retain(|(t, _)| *t != txn);
                Self::pump(state, &mut self.held_by, &key, &mut granted);
                if state.holders.is_empty() && state.waiters.is_empty() {
                    self.locks.remove(&key);
                }
            }
        }
        granted
    }

    fn pump(
        state: &mut LockState,
        held_by: &mut HashMap<TxnId, Vec<LockKey>>,
        key: &LockKey,
        granted: &mut Vec<WaiterToken>,
    ) {
        while let Some(front) = state.waiters.front() {
            if !state.compatible_with_holders(front.txn, front.mode) {
                break;
            }
            let w = state.waiters.pop_front().expect("front exists");
            let newly = state.holder_mode(w.txn).is_none();
            state.grant(w.txn, w.mode);
            if newly {
                held_by.entry(w.txn).or_default().push(key.clone());
            }
            granted.push(w.token);
        }
    }
}

type LockCont = Box<dyn FnOnce(&mut Sim, StoreResult<()>)>;

struct PendingSeq {
    txn: TxnId,
    keys: Vec<LockKey>,
    next_idx: usize,
    mode: LockMode,
    current: Option<(LockKey, WaiterToken)>,
    cont: LockCont,
}

struct DbInner {
    tables: Vec<Box<dyn AnyTable>>,
    locks: LockManager,
    txns: HashMap<TxnId, TxnState>,
    next_txn: u64,
    shards: Vec<StationRef>,
    params: StoreParams,
    lock_timeout: SimDuration,
    pending: HashMap<u64, PendingSeq>,
    token_to_seq: HashMap<WaiterToken, u64>,
    next_seq: u64,
    stats: DbStats,
}

enum TxnCheck {
    Ok,
    Fail(StoreError),
}

/// The pre-overhaul store: per-op heap-allocated keys, hash-map pending
/// sequences, and cloned charge metadata. API-compatible with the subset of
/// [`crate::Db`] that `bench_metadata` exercises.
#[derive(Clone)]
pub struct Db {
    inner: Rc<RefCell<DbInner>>,
}

impl Db {
    /// Creates a store with the capacity model in `params`.
    #[must_use]
    pub fn new(params: &StoreParams, lock_timeout: SimDuration) -> Self {
        let shards = (0..params.shards.max(1))
            .map(|i| Station::new(format!("ndb-shard-{i}"), params.workers_per_shard.max(1)))
            .collect();
        Db {
            inner: Rc::new(RefCell::new(DbInner {
                tables: Vec::new(),
                locks: LockManager::new(),
                txns: HashMap::new(),
                next_txn: 0,
                shards,
                params: params.clone(),
                lock_timeout,
                pending: HashMap::new(),
                token_to_seq: HashMap::new(),
                next_seq: 0,
                stats: DbStats::default(),
            })),
        }
    }

    /// Registers a new, empty table.
    pub fn create_table<K: KeyCodec, V: Clone + 'static>(
        &self,
        name: impl Into<String>,
    ) -> TableHandle<K, V> {
        let mut inner = self.inner.borrow_mut();
        let id = TableId::new(inner.tables.len() as u32);
        inner.tables.push(Box::new(TypedTable::<K, V>::new(name)));
        TableHandle::new(id)
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> DbStats {
        self.inner.borrow().stats
    }

    /// Builds the canonical lock key for a row (allocates per call, as the
    /// pre-overhaul store did).
    #[must_use]
    pub fn lock_key<K: KeyCodec, V>(&self, table: TableHandle<K, V>, key: &K) -> LockKey {
        LockKey { table: table.id(), key: key.encode() }
    }

    /// Starts a transaction.
    #[must_use]
    pub fn begin(&self) -> TxnId {
        let mut inner = self.inner.borrow_mut();
        inner.next_txn += 1;
        let id = TxnId::new(inner.next_txn);
        inner.txns.insert(id, TxnState::new());
        id
    }

    fn check_txn(inner: &DbInner, txn: TxnId) -> TxnCheck {
        match inner.txns.get(&txn) {
            None => TxnCheck::Fail(StoreError::UnknownTxn { txn }),
            Some(state) if state.phase == TxnPhase::Aborted => {
                TxnCheck::Fail(StoreError::Aborted { txn })
            }
            Some(_) => TxnCheck::Ok,
        }
    }

    /// Acquires `keys` (sorted, deduplicated) in `mode`, then calls `cont`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is not sorted/deduplicated.
    pub fn lock<F>(&self, sim: &mut Sim, txn: TxnId, keys: Vec<LockKey>, mode: LockMode, cont: F)
    where
        F: FnOnce(&mut Sim, StoreResult<()>) + 'static,
    {
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "lock keys must be sorted and unique");
        let check = Self::check_txn(&self.inner.borrow(), txn);
        if let TxnCheck::Fail(e) = check {
            sim.schedule(SimDuration::ZERO, move |sim| cont(sim, Err(e)));
            return;
        }
        let seq_id = {
            let mut inner = self.inner.borrow_mut();
            inner.next_seq += 1;
            let seq_id = inner.next_seq;
            inner.pending.insert(
                seq_id,
                PendingSeq { txn, keys, next_idx: 0, mode, current: None, cont: Box::new(cont) },
            );
            seq_id
        };
        self.drive_seq(sim, seq_id);
        if self.inner.borrow().pending.contains_key(&seq_id) {
            let timeout = self.inner.borrow().lock_timeout;
            let db = self.clone();
            sim.schedule(timeout, move |sim| db.timeout_seq(sim, seq_id));
        }
    }

    fn drive_seq(&self, sim: &mut Sim, seq_id: u64) {
        let finished = {
            let mut inner = self.inner.borrow_mut();
            let Some(mut seq) = inner.pending.remove(&seq_id) else { return };
            seq.current = None;
            let mut waiting = false;
            while seq.next_idx < seq.keys.len() {
                let key = seq.keys[seq.next_idx].clone();
                match inner.locks.acquire(seq.txn, &key, seq.mode) {
                    (Acquire::Granted, _) => seq.next_idx += 1,
                    (Acquire::Wait, token) => {
                        seq.current = Some((key, token));
                        inner.token_to_seq.insert(token, seq_id);
                        waiting = true;
                        break;
                    }
                }
            }
            if waiting {
                inner.pending.insert(seq_id, seq);
                None
            } else {
                Some(seq.cont)
            }
        };
        if let Some(cont) = finished {
            sim.schedule(SimDuration::ZERO, move |sim| cont(sim, Ok(())));
        }
    }

    fn on_grant(&self, sim: &mut Sim, token: WaiterToken) {
        let seq_id = self.inner.borrow_mut().token_to_seq.remove(&token);
        let Some(seq_id) = seq_id else { return };
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(seq) = inner.pending.get_mut(&seq_id) {
                seq.next_idx += 1;
                seq.current = None;
            }
        }
        self.drive_seq(sim, seq_id);
    }

    fn timeout_seq(&self, sim: &mut Sim, seq_id: u64) {
        let victim = {
            let mut inner = self.inner.borrow_mut();
            let Some(seq) = inner.pending.remove(&seq_id) else { return };
            inner.stats.lock_timeouts += 1;
            let mut granted = Vec::new();
            if let Some((key, token)) = &seq.current {
                inner.token_to_seq.remove(token);
                inner.locks.cancel_waiter(key, *token, &mut granted);
            }
            Self::abort_in(&mut inner, seq.txn, &mut granted);
            (seq.txn, seq.cont, granted)
        };
        let (txn, cont, granted) = victim;
        self.dispatch_grants(sim, granted);
        sim.schedule(SimDuration::ZERO, move |sim| {
            cont(sim, Err(StoreError::LockTimeout { txn }));
        });
    }

    fn dispatch_grants(&self, sim: &mut Sim, granted: Vec<WaiterToken>) {
        for token in granted {
            let db = self.clone();
            sim.schedule(SimDuration::ZERO, move |sim| db.on_grant(sim, token));
        }
    }

    fn abort_in(inner: &mut DbInner, txn: TxnId, granted: &mut Vec<WaiterToken>) {
        if let Some(mut state) = inner.txns.remove(&txn) {
            inner.stats.aborts += 1;
            for undo in state.undo.drain(..).rev() {
                undo(&mut inner.tables);
            }
        }
        granted.extend(inner.locks.release_all(txn));
    }

    /// Aborts `txn` immediately.
    pub fn abort(&self, sim: &mut Sim, txn: TxnId) {
        let granted = {
            let mut inner = self.inner.borrow_mut();
            let mut granted = Vec::new();
            Self::abort_in(&mut inner, txn, &mut granted);
            granted
        };
        self.dispatch_grants(sim, granted);
    }

    fn with_table<K: KeyCodec, V: Clone + 'static, R>(
        &self,
        table: TableHandle<K, V>,
        f: impl FnOnce(&TypedTable<K, V>) -> R,
    ) -> R {
        let inner = self.inner.borrow();
        let t = inner.tables[table.id().raw() as usize]
            .as_any()
            .downcast_ref::<TypedTable<K, V>>()
            .expect("table handle type mismatch");
        f(t)
    }

    /// Inserts a row with no transaction, no locks, and no capacity charge
    /// (pre-run bulk loading only).
    ///
    /// # Panics
    ///
    /// Panics if any transaction is active.
    pub fn bootstrap_insert<K, V>(&self, table: TableHandle<K, V>, key: K, value: V)
    where
        K: KeyCodec,
        V: Clone + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.txns.is_empty(), "bootstrap_insert only before transactions");
        let t = inner.tables[table.id().raw() as usize]
            .as_any_mut()
            .downcast_mut::<TypedTable<K, V>>()
            .expect("table handle type mismatch");
        t.insert(key, value);
    }

    /// Reads a row with no lock and no capacity charge.
    #[must_use]
    pub fn peek<K: KeyCodec, V: Clone + 'static>(
        &self,
        table: TableHandle<K, V>,
        key: &K,
    ) -> Option<V> {
        self.with_table(table, |t| t.get(key).cloned())
    }

    fn shard_of(shards: usize, enc: &[u8]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in enc {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % shards as u64) as usize
    }

    fn join_jobs<F>(sim: &mut Sim, jobs: Vec<(StationRef, SimDuration)>, done: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        if jobs.is_empty() {
            sim.schedule(SimDuration::ZERO, done);
            return;
        }
        let remaining = Rc::new(Cell::new(jobs.len()));
        let done = Rc::new(RefCell::new(Some(done)));
        for (station, service) in jobs {
            let remaining = Rc::clone(&remaining);
            let done = Rc::clone(&done);
            Station::submit(&station, sim, service, move |sim| {
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    if let Some(done) = done.borrow_mut().take() {
                        done(sim);
                    }
                }
            });
        }
    }

    fn charge_batch_read<F>(&self, sim: &mut Sim, enc_keys: &[Vec<u8>], done: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let (stations, params) = {
            let inner = self.inner.borrow();
            (inner.shards.clone(), inner.params.clone())
        };
        let mut per_shard: HashMap<usize, u32> = HashMap::new();
        for enc in enc_keys {
            *per_shard.entry(Self::shard_of(stations.len(), enc)).or_default() += 1;
        }
        let mut shard_ids: Vec<usize> = per_shard.keys().copied().collect();
        shard_ids.sort_unstable();
        let jobs = shard_ids
            .into_iter()
            .map(|s| {
                let rows = per_shard[&s];
                let service = sim.rng().sample_duration(&params.batch_read)
                    + sim.rng().sample_duration(&params.batch_row_extra)
                        * u64::from(rows.saturating_sub(1));
                (Rc::clone(&stations[s]), service)
            })
            .collect();
        Self::join_jobs(sim, jobs, done);
    }

    /// Acquires locks on `keys`, charges one batched read, and delivers
    /// the row values.
    pub fn read_locked<K, V, F>(
        &self,
        sim: &mut Sim,
        txn: TxnId,
        table: TableHandle<K, V>,
        keys: Vec<K>,
        mode: LockMode,
        cont: F,
    ) where
        K: KeyCodec,
        V: Clone + 'static,
        F: FnOnce(&mut Sim, StoreResult<Vec<Option<V>>>) + 'static,
    {
        self.inner.borrow_mut().stats.locked_reads += 1;
        let mut lock_keys: Vec<LockKey> = keys.iter().map(|k| self.lock_key(table, k)).collect();
        lock_keys.sort();
        lock_keys.dedup();
        let enc: Vec<Vec<u8>> = lock_keys.iter().map(|lk| lk.key.clone()).collect();
        let db = self.clone();
        self.lock(sim, txn, lock_keys, mode, move |sim, res| match res {
            Err(e) => cont(sim, Err(e)),
            Ok(()) => {
                let db2 = db.clone();
                db.charge_batch_read(sim, &enc, move |sim| {
                    let values =
                        db2.with_table(table, |t| keys.iter().map(|k| t.get(k).cloned()).collect());
                    cont(sim, Ok(values));
                });
            }
        });
    }

    /// Reads rows without locks, charging one batched read.
    pub fn read_committed<K, V, F>(
        &self,
        sim: &mut Sim,
        table: TableHandle<K, V>,
        keys: Vec<K>,
        cont: F,
    ) where
        K: KeyCodec,
        V: Clone + 'static,
        F: FnOnce(&mut Sim, Vec<Option<V>>) + 'static,
    {
        self.inner.borrow_mut().stats.unlocked_reads += 1;
        let enc: Vec<Vec<u8>> = keys.iter().map(|k| k.encode()).collect();
        let db = self.clone();
        self.charge_batch_read(sim, &enc, move |sim| {
            let values = db.with_table(table, |t| keys.iter().map(|k| t.get(k).cloned()).collect());
            cont(sim, values);
        });
    }

    /// Inserts or replaces a row under `txn`'s exclusive lock.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::Db::upsert`].
    pub fn upsert<K, V>(
        &self,
        txn: TxnId,
        table: TableHandle<K, V>,
        key: K,
        value: V,
    ) -> StoreResult<()>
    where
        K: KeyCodec,
        V: Clone + 'static,
    {
        let lk = self.lock_key(table, &key);
        let mut inner = self.inner.borrow_mut();
        if let TxnCheck::Fail(e) = Self::check_txn(&inner, txn) {
            return Err(e);
        }
        if !inner.locks.holds(txn, &lk, LockMode::Exclusive) {
            return Err(StoreError::LockNotHeld { txn, row: lk.to_string() });
        }
        let shard = Self::shard_of(inner.shards.len(), &lk.key) as u32;
        let old = {
            let t = inner.tables[table.id().raw() as usize]
                .as_any_mut()
                .downcast_mut::<TypedTable<K, V>>()
                .expect("table handle type mismatch");
            t.insert(key.clone(), value)
        };
        inner.stats.rows_written += 1;
        let state = inner.txns.get_mut(&txn).expect("checked above");
        *state.writes_per_shard.entry(shard).or_default() += 1;
        state.undo.push(Box::new(move |tables| {
            let t = tables[table.id().raw() as usize]
                .as_any_mut()
                .downcast_mut::<TypedTable<K, V>>()
                .expect("table handle type mismatch");
            match old {
                Some(old) => {
                    t.insert(key, old);
                }
                None => {
                    t.remove(&key);
                }
            }
        }));
        Ok(())
    }

    /// Deletes a row under `txn`'s exclusive lock.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::Db::remove`].
    pub fn remove<K, V>(
        &self,
        txn: TxnId,
        table: TableHandle<K, V>,
        key: K,
    ) -> StoreResult<Option<V>>
    where
        K: KeyCodec,
        V: Clone + 'static,
    {
        let lk = self.lock_key(table, &key);
        let mut inner = self.inner.borrow_mut();
        if let TxnCheck::Fail(e) = Self::check_txn(&inner, txn) {
            return Err(e);
        }
        if !inner.locks.holds(txn, &lk, LockMode::Exclusive) {
            return Err(StoreError::LockNotHeld { txn, row: lk.to_string() });
        }
        let shard = Self::shard_of(inner.shards.len(), &lk.key) as u32;
        let old = {
            let t = inner.tables[table.id().raw() as usize]
                .as_any_mut()
                .downcast_mut::<TypedTable<K, V>>()
                .expect("table handle type mismatch");
            t.remove(&key)
        };
        inner.stats.rows_written += 1;
        let state = inner.txns.get_mut(&txn).expect("checked above");
        *state.writes_per_shard.entry(shard).or_default() += 1;
        let undo_old = old.clone();
        state.undo.push(Box::new(move |tables| {
            if let Some(v) = undo_old {
                let t = tables[table.id().raw() as usize]
                    .as_any_mut()
                    .downcast_mut::<TypedTable<K, V>>()
                    .expect("table handle type mismatch");
                t.insert(key, v);
            }
        }));
        Ok(old)
    }

    /// Commits `txn`, charging write + commit service on written shards.
    pub fn commit<F>(&self, sim: &mut Sim, txn: TxnId, cont: F)
    where
        F: FnOnce(&mut Sim, StoreResult<()>) + 'static,
    {
        let writes = {
            let inner = self.inner.borrow();
            match Self::check_txn(&inner, txn) {
                TxnCheck::Fail(e) => Err(e),
                TxnCheck::Ok => {
                    Ok(inner.txns.get(&txn).expect("checked").writes_per_shard.clone())
                }
            }
        };
        let writes = match writes {
            Err(e) => {
                sim.schedule(SimDuration::ZERO, move |sim| cont(sim, Err(e)));
                return;
            }
            Ok(w) => w,
        };
        let db = self.clone();
        let finish = move |sim: &mut Sim| {
            let granted = {
                let mut inner = db.inner.borrow_mut();
                if inner.txns.remove(&txn).is_some() {
                    inner.stats.commits += 1;
                }
                inner.locks.release_all(txn)
            };
            db.dispatch_grants(sim, granted);
            cont(sim, Ok(()));
        };
        if writes.is_empty() {
            finish(sim);
            return;
        }
        let (stations, params) = {
            let inner = self.inner.borrow();
            (inner.shards.clone(), inner.params.clone())
        };
        let written: Vec<u32> = writes.keys().copied().collect();
        let coordinator = written[(txn.raw() % written.len() as u64) as usize];
        let jobs = writes
            .iter()
            .map(|(&shard, &rows)| {
                let mut service = sim.rng().sample_duration(&params.row_write) * u64::from(rows);
                if shard == coordinator {
                    service += sim.rng().sample_duration(&params.commit);
                }
                (Rc::clone(&stations[shard as usize]), service)
            })
            .collect();
        Self::join_jobs(sim, jobs, finish);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The baseline store must agree with the overhauled store on a simple
    /// lock → write → commit → read script (same values, same stats).
    #[test]
    fn baseline_matches_current_store_on_a_txn_script() {
        let params = StoreParams::default();
        let timeout = SimDuration::from_secs(5);

        // Baseline run.
        let mut sim = Sim::new(11);
        let db = Db::new(&params, timeout);
        let t = db.create_table::<u64, String>("inodes");
        let txn = db.begin();
        let db2 = db.clone();
        db.lock(&mut sim, txn, vec![db.lock_key(t, &7u64)], LockMode::Exclusive, move |sim, r| {
            r.unwrap();
            db2.upsert(txn, t, 7, "v".to_string()).unwrap();
            let db3 = db2.clone();
            db2.commit(sim, txn, move |_sim, r| {
                r.unwrap();
                assert_eq!(db3.peek(t, &7), Some("v".to_string()));
            });
        });
        sim.run();
        let base_elapsed = sim.now();
        assert_eq!(db.stats().commits, 1);

        // Current store, same seed and script.
        let mut sim = Sim::new(11);
        let cur = crate::Db::new(&params, timeout);
        let ct = cur.create_table::<u64, String>("inodes");
        let ctxn = cur.begin();
        let cur2 = cur.clone();
        cur.lock(
            &mut sim,
            ctxn,
            vec![cur.lock_key(ct, &7u64)],
            LockMode::Exclusive,
            move |sim, r| {
                r.unwrap();
                cur2.upsert(ctxn, ct, 7, "v".to_string()).unwrap();
                let cur3 = cur2.clone();
                cur2.commit(sim, ctxn, move |_sim, r| {
                    r.unwrap();
                    assert_eq!(cur3.peek(ct, &7), Some("v".to_string()));
                });
            },
        );
        sim.run();
        assert_eq!(sim.now(), base_elapsed, "same seed, same charge sequence");
        assert_eq!(cur.stats(), db.stats());
    }
}
