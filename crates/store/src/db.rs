//! The transactional metadata store (MySQL Cluster NDB analog).
//!
//! A [`Db`] hosts typed tables sharded (by key hash) across a set of
//! queueing stations that model NDB data nodes. Operations that touch rows
//! charge simulated service time on the owning shards, which is what makes
//! the store a *capacity-limited* resource — the bottleneck behind HopsFS's
//! throughput ceiling in the paper's Figures 8, 11, and 12.
//!
//! ## Concurrency model
//!
//! * Strict two-phase locking via [`LockManager`]: locked reads take shared
//!   locks; every write requires an exclusive lock acquired through
//!   [`Db::lock`] first. Locks are held until commit/abort.
//! * To stay deadlock-free, callers acquire lock sets in sorted
//!   [`LockKey`] order — the same "predefined total ordering" HopsFS uses
//!   (paper, Appendix D). [`Db::lock`] enforces sortedness of each batch;
//!   cross-batch ordering is the caller's contract, backed by a lock-wait
//!   timeout that aborts the victim so a violation degrades to a retry
//!   rather than a hang.
//! * Writes apply immediately under their exclusive lock with an undo log;
//!   abort rolls back. Locked readers can never observe uncommitted state
//!   because the writer still holds the exclusive lock. (Unlocked
//!   [`Db::read_committed`]/[`Db::scan`] reads are dirty-read "monitoring"
//!   reads used only for maintenance paths, as documented there.)
//!
//! ## Hot-path allocation discipline
//!
//! The lock/read/commit paths are the store's per-operation hot path and
//! stay (almost) allocation-free in steady state:
//!
//! * Row keys are encoded once into a reusable scratch buffer and carried
//!   as [`EncodedKey`]s (inline up to 23 bytes), so handing keys to the
//!   lock manager and the shard router copies bytes, not heap blocks.
//! * Pending lock sequences live in a slab (`Vec<Option<PendingSeq>>` plus
//!   a free list) mirroring the station job slab in `lambda-sim`; slots are
//!   generation-tagged so a stale timeout event for a recycled slot is
//!   recognized and ignored. The `Vec<LockKey>` batches of finished
//!   sequences are recycled through a pool.
//! * Batched reads pre-compute a per-shard `(shard, rows)` charge plan in
//!   a pooled buffer instead of cloning every encoded key into a
//!   `Vec<Vec<u8>>` and re-hashing it at charge time.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::ops::RangeBounds;
use std::rc::Rc;

use lambda_lsm::LsmStats;
use lambda_sim::fault::ShardOutage;
use lambda_sim::params::StoreParams;
use lambda_sim::{Sim, SimDuration, SimTime, Station, StationRef};

use crate::backend::{
    BackendKind, CommitFate, CrashOutcome, DurabilityConfig, DurabilityStats, DurableBackend,
    InMemoryBackend, ShadowWrite, StoreBackend,
};
use crate::error::{StoreError, StoreResult};
use crate::key::{EncodedKey, KeyCodec};
use crate::lock::{Acquire, LockKey, LockManager, LockMode, WaiterToken};
use crate::table::{AnyTable, TableHandle, TableId, TypedTable};
use crate::txn::{TxnId, TxnPhase, TxnState};

/// Cumulative operation counters for a [`Db`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Locked batch reads served.
    pub locked_reads: u64,
    /// Read-committed (unlocked) reads served.
    pub unlocked_reads: u64,
    /// Range scans served.
    pub scans: u64,
    /// Rows written (upserts + removes).
    pub rows_written: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted (including lock-timeout victims).
    pub aborts: u64,
    /// Lock acquisitions that timed out.
    pub lock_timeouts: u64,
    /// Injected shard crashes ([`Db::crash_shard`]).
    pub shard_crashes: u64,
    /// Transactions aborted because a shard they wrote crashed under them.
    pub failover_aborts: u64,
    /// Operations rejected with [`StoreError::ShardUnavailable`].
    pub unavailable_errors: u64,
}

/// Continuation receiving the outcome of a lock acquisition.
type LockCont = Box<dyn FnOnce(&mut Sim, StoreResult<()>)>;

/// A per-shard batched-read charge plan: `(shard, rows)` pairs in ascending
/// shard order. Buffers are recycled through `DbInner::plan_pool`.
type ChargePlan = Vec<(u32, u32)>;

struct PendingSeq {
    txn: TxnId,
    keys: Vec<LockKey>,
    next_idx: usize,
    mode: LockMode,
    /// The waiter token currently queued in the lock manager; the queued
    /// key is `keys[next_idx]`.
    current: Option<WaiterToken>,
    cont: LockCont,
}

/// One slab slot for a pending lock sequence. `gen` increments every time
/// the slot is freed, so a handle embedding the generation can tell a live
/// sequence from a recycled slot (a stale timeout becomes a no-op).
struct SeqSlot {
    gen: u32,
    seq: Option<PendingSeq>,
}

/// Handle to a pending sequence: `(generation << 32) | slot`.
type SeqHandle = u64;

fn seq_handle(slot: u32, gen: u32) -> SeqHandle {
    (u64::from(gen) << 32) | u64::from(slot)
}

fn handle_slot(handle: SeqHandle) -> usize {
    (handle & 0xffff_ffff) as usize
}

fn handle_gen(handle: SeqHandle) -> u32 {
    (handle >> 32) as u32
}

struct DbInner {
    tables: Vec<Box<dyn AnyTable>>,
    locks: LockManager,
    txns: HashMap<TxnId, TxnState>,
    next_txn: u64,
    shards: Rc<[StationRef]>,
    params: Rc<StoreParams>,
    lock_timeout: SimDuration,
    /// Pending lock-sequence slab; slots are recycled through `seq_free`.
    pending: Vec<SeqSlot>,
    seq_free: Vec<u32>,
    token_to_seq: HashMap<WaiterToken, SeqHandle>,
    /// Recycled (cleared) `Vec<LockKey>` batches.
    key_pool: Vec<Vec<LockKey>>,
    /// Recycled (cleared) charge-plan buffers.
    plan_pool: Vec<ChargePlan>,
    /// Per-shard row counters used while building a plan; all-zero between
    /// operations.
    shard_rows: Vec<u32>,
    /// Reusable key-encoding staging buffer.
    enc_scratch: Vec<u8>,
    /// Per-shard failover deadline: `Some(t)` means the shard is down until
    /// its node-group replica finishes taking over at `t` (fault
    /// injection). All-`None` in a healthy run.
    down_until: Vec<Option<SimTime>>,
    stats: DbStats,
    /// Persistence model (WAL/commit-order/crash-recovery seam).
    backend: Box<dyn StoreBackend>,
    /// Whether writes must be captured into the transaction's shadow log
    /// for the backend (`false` for the in-memory backend, keeping the
    /// write path allocation behavior unchanged).
    log_writes: bool,
}

impl DbInner {
    /// Parks `seq` in a slab slot and returns its handle.
    fn park_seq(&mut self, seq: PendingSeq) -> SeqHandle {
        match self.seq_free.pop() {
            Some(slot) => {
                let s = &mut self.pending[slot as usize];
                debug_assert!(s.seq.is_none());
                s.seq = Some(seq);
                seq_handle(slot, s.gen)
            }
            None => {
                let slot = u32::try_from(self.pending.len()).expect("pending slab overflow");
                self.pending.push(SeqSlot { gen: 0, seq: Some(seq) });
                seq_handle(slot, 0)
            }
        }
    }

    /// Takes the sequence out of `handle`'s slot if the handle is still
    /// current (same generation, slot occupied).
    fn take_seq(&mut self, handle: SeqHandle) -> Option<PendingSeq> {
        let slot = self.pending.get_mut(handle_slot(handle))?;
        if slot.gen != handle_gen(handle) {
            return None;
        }
        slot.seq.take()
    }

    /// Returns a sequence to its (still-reserved) slot.
    fn restore_seq(&mut self, handle: SeqHandle, seq: PendingSeq) {
        let slot = &mut self.pending[handle_slot(handle)];
        debug_assert_eq!(slot.gen, handle_gen(handle));
        debug_assert!(slot.seq.is_none());
        slot.seq = Some(seq);
    }

    /// Frees `handle`'s slot, invalidating outstanding handles to it.
    fn free_seq_slot(&mut self, handle: SeqHandle) {
        let idx = handle_slot(handle);
        let slot = &mut self.pending[idx];
        debug_assert!(slot.seq.is_none());
        slot.gen = slot.gen.wrapping_add(1);
        self.seq_free.push(idx as u32);
    }

    /// Whether `handle` still refers to a live (waiting) sequence.
    fn seq_alive(&self, handle: SeqHandle) -> bool {
        self.pending
            .get(handle_slot(handle))
            .is_some_and(|s| s.gen == handle_gen(handle) && s.seq.is_some())
    }

    /// Recycles a finished sequence's key batch.
    fn recycle_keys(&mut self, mut keys: Vec<LockKey>) {
        keys.clear();
        self.key_pool.push(keys);
    }
}

/// Routes an encoded key to its owning shard (FNV-1a over the key bytes).
pub(crate) fn shard_of(shards: usize, enc: &[u8]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in enc {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Records one encoded key in an under-construction charge plan.
fn plan_note(shard_rows: &mut [u32], plan: &mut ChargePlan, shard: usize) {
    if shard_rows[shard] == 0 {
        plan.push((shard as u32, 0));
    }
    shard_rows[shard] += 1;
}

/// Finalizes a plan: fills in row counts, re-zeroes the counters, and sorts
/// by shard so capacity charges sample shards in ascending order.
fn plan_seal(shard_rows: &mut [u32], plan: &mut ChargePlan) {
    for (shard, rows) in plan.iter_mut() {
        *rows = shard_rows[*shard as usize];
        shard_rows[*shard as usize] = 0;
    }
    plan.sort_unstable();
}

/// A shared handle to the store. Cloning is cheap and refers to the same
/// underlying database.
///
/// # Examples
///
/// ```
/// use lambda_sim::{params::StoreParams, Sim, SimDuration};
/// use lambda_store::{Db, LockMode};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new(1);
/// let db = Db::new(&StoreParams::default(), SimDuration::from_secs(5));
/// let inodes = db.create_table::<u64, String>("inodes");
///
/// let txn = db.begin();
/// let result = Rc::new(RefCell::new(None));
/// let out = Rc::clone(&result);
/// let db2 = db.clone();
/// db.lock(&mut sim, txn, vec![db.lock_key(inodes, &7u64)], LockMode::Exclusive, move |sim, r| {
///     r.unwrap();
///     db2.upsert(txn, inodes, 7, "hello".to_string()).unwrap();
///     let out = Rc::clone(&out);
///     let db3 = db2.clone();
///     db2.commit(sim, txn, move |_sim, r| {
///         r.unwrap();
///         *out.borrow_mut() = db3.peek(inodes, &7);
///     });
/// });
/// sim.run();
/// assert_eq!(*result.borrow(), Some("hello".to_string()));
/// ```
#[derive(Clone)]
pub struct Db {
    inner: Rc<RefCell<DbInner>>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Db")
            .field("tables", &inner.tables.len())
            .field("shards", &inner.shards.len())
            .field("active_txns", &inner.txns.len())
            .finish()
    }
}

/// Status snapshot of a transaction, used internally before fallible calls.
enum TxnCheck {
    Ok,
    Fail(StoreError),
}

impl Db {
    /// Creates a store with the capacity model in `params`; lock waits
    /// longer than `lock_timeout` abort the waiting transaction.
    ///
    /// The store runs on the volatile [`BackendKind::InMemory`] backend;
    /// see [`Db::new_durable`] for the WAL-backed alternative.
    #[must_use]
    pub fn new(params: &StoreParams, lock_timeout: SimDuration) -> Self {
        Self::with_backend(params, lock_timeout, Box::new(InMemoryBackend), false)
    }

    /// Creates a store on the WAL-backed [`BackendKind::Durable`] backend:
    /// committed writes are appended to per-shard write-ahead logs before
    /// the commit completes, made durable at `durability.flush_interval`
    /// group-commit boundaries, and a [`Db::crash_shard`] triggers WAL
    /// replay recovery (costed deterministically from replay volume)
    /// instead of a fixed takeover window.
    #[must_use]
    pub fn new_durable(
        params: &StoreParams,
        lock_timeout: SimDuration,
        durability: DurabilityConfig,
    ) -> Self {
        let shard_count = params.shards.max(1) as usize;
        Self::with_backend(
            params,
            lock_timeout,
            Box::new(DurableBackend::new(durability, shard_count)),
            true,
        )
    }

    fn with_backend(
        params: &StoreParams,
        lock_timeout: SimDuration,
        backend: Box<dyn StoreBackend>,
        log_writes: bool,
    ) -> Self {
        let shards: Rc<[StationRef]> = (0..params.shards.max(1))
            .map(|i| Station::new(format!("ndb-shard-{i}"), params.workers_per_shard.max(1)))
            .collect();
        let shard_count = shards.len();
        Db {
            inner: Rc::new(RefCell::new(DbInner {
                tables: Vec::new(),
                locks: LockManager::new(),
                txns: HashMap::new(),
                next_txn: 0,
                shards,
                params: Rc::new(params.clone()),
                lock_timeout,
                pending: Vec::new(),
                seq_free: Vec::new(),
                token_to_seq: HashMap::new(),
                key_pool: Vec::new(),
                plan_pool: Vec::new(),
                shard_rows: vec![0; shard_count],
                enc_scratch: Vec::new(),
                down_until: vec![None; shard_count],
                stats: DbStats::default(),
                backend,
                log_writes,
            })),
        }
    }

    /// Which persistence backend this store runs on.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.inner.borrow().backend.kind()
    }

    /// Durability counters, if the store runs on the durable backend.
    #[must_use]
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.inner.borrow().backend.durability_stats()
    }

    /// Aggregated shadow-LSM counters (WAL/flush/compaction volume), if the
    /// store runs on the durable backend.
    #[must_use]
    pub fn lsm_stats(&self) -> Option<LsmStats> {
        self.inner.borrow().backend.lsm_stats()
    }

    /// Durable-backend consistency violations found by post-crash checks
    /// (auditor feed; empty = healthy, always empty in-memory).
    #[must_use]
    pub fn durability_violations(&self) -> Vec<String> {
        self.inner.borrow().backend.violations().to_vec()
    }

    /// Registers a new, empty table.
    pub fn create_table<K: KeyCodec, V: Clone + 'static>(
        &self,
        name: impl Into<String>,
    ) -> TableHandle<K, V> {
        let mut inner = self.inner.borrow_mut();
        let id = TableId::new(inner.tables.len() as u32);
        inner.tables.push(Box::new(TypedTable::<K, V>::new(name)));
        TableHandle::new(id)
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> DbStats {
        self.inner.borrow().stats
    }

    /// The shard stations (for utilization reporting).
    #[must_use]
    pub fn shards(&self) -> Vec<StationRef> {
        self.inner.borrow().shards.to_vec()
    }

    /// The configured capacity parameters, as a shared handle (the
    /// parameter set itself is not copied per call).
    #[must_use]
    pub fn params(&self) -> Rc<StoreParams> {
        Rc::clone(&self.inner.borrow().params)
    }

    /// Number of rows in `table` right now (no capacity charge; test and
    /// reporting aid).
    #[must_use]
    pub fn table_len<K: KeyCodec, V: Clone + 'static>(&self, table: TableHandle<K, V>) -> usize {
        self.with_table(table, |t| t.rows.len())
    }

    /// Names and row counts of all tables (reporting aid). The names are
    /// shared handles, not per-call string copies.
    #[must_use]
    pub fn table_inventory(&self) -> Vec<(Rc<str>, usize)> {
        let inner = self.inner.borrow();
        inner.tables.iter().map(|t| (t.name_shared(), t.len())).collect()
    }

    /// Rows written so far by an active transaction, if it exists.
    ///
    /// Reports 0 once [`Db::commit`] has claimed the write set (the commit
    /// charge is then in flight).
    #[must_use]
    pub fn txn_write_count(&self, txn: TxnId) -> Option<u32> {
        self.inner.borrow().txns.get(&txn).map(|s| s.total_writes())
    }

    /// Builds the canonical lock key for a row.
    #[must_use]
    pub fn lock_key<K: KeyCodec, V>(&self, table: TableHandle<K, V>, key: &K) -> LockKey {
        let mut inner = self.inner.borrow_mut();
        let enc = EncodedKey::encode(key, &mut inner.enc_scratch);
        LockKey { table: table.id(), key: enc }
    }

    /// Starts a transaction.
    #[must_use]
    pub fn begin(&self) -> TxnId {
        let mut inner = self.inner.borrow_mut();
        inner.next_txn += 1;
        let id = TxnId::new(inner.next_txn);
        inner.txns.insert(id, TxnState::new());
        id
    }

    /// Whether `txn` currently holds `key` at `mode` or stronger.
    #[must_use]
    pub fn holds(&self, txn: TxnId, key: &LockKey, mode: LockMode) -> bool {
        self.inner.borrow().locks.holds(txn, key, mode)
    }

    fn check_txn(inner: &DbInner, txn: TxnId) -> TxnCheck {
        match inner.txns.get(&txn) {
            None => TxnCheck::Fail(StoreError::UnknownTxn { txn }),
            Some(state) if state.phase == TxnPhase::Aborted => {
                TxnCheck::Fail(StoreError::Aborted { txn })
            }
            Some(_) => TxnCheck::Ok,
        }
    }

    /// Acquires `keys` (which must be sorted and deduplicated) in `mode`
    /// for `txn`, then calls `cont`.
    ///
    /// `cont` receives `Err(StoreError::LockTimeout)` if the wait exceeded
    /// the store's lock timeout, in which case the transaction has been
    /// aborted (all its locks released, all its writes undone).
    ///
    /// # Panics
    ///
    /// Panics if `keys` is not sorted/deduplicated (lock-order discipline).
    pub fn lock<F>(&self, sim: &mut Sim, txn: TxnId, keys: Vec<LockKey>, mode: LockMode, cont: F)
    where
        F: FnOnce(&mut Sim, StoreResult<()>) + 'static,
    {
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "lock keys must be sorted and unique");
        let check = Self::check_txn(&self.inner.borrow(), txn);
        if let TxnCheck::Fail(e) = check {
            sim.schedule(SimDuration::ZERO, move |sim| cont(sim, Err(e)));
            return;
        }
        let handle = self.inner.borrow_mut().park_seq(PendingSeq {
            txn,
            keys,
            next_idx: 0,
            mode,
            current: None,
            cont: Box::new(cont),
        });
        self.drive_seq(sim, handle);
        // Arm the timeout for the whole sequence; it is a no-op if the
        // sequence finished by then (the slot's generation has moved on).
        if self.inner.borrow().seq_alive(handle) {
            let timeout = self.inner.borrow().lock_timeout;
            let db = self.clone();
            sim.schedule(timeout, move |sim| db.timeout_seq(sim, handle));
        }
    }

    /// Advances a pending acquisition sequence as far as possible.
    fn drive_seq(&self, sim: &mut Sim, handle: SeqHandle) {
        let finished = {
            let mut inner = self.inner.borrow_mut();
            let Some(mut seq) = inner.take_seq(handle) else { return };
            seq.current = None;
            let mut waiting = false;
            while seq.next_idx < seq.keys.len() {
                match inner.locks.acquire(seq.txn, &seq.keys[seq.next_idx], seq.mode) {
                    (Acquire::Granted, _) => seq.next_idx += 1,
                    (Acquire::Wait, token) => {
                        seq.current = Some(token);
                        inner.token_to_seq.insert(token, handle);
                        waiting = true;
                        break;
                    }
                }
            }
            if waiting {
                inner.restore_seq(handle, seq);
                None
            } else {
                inner.free_seq_slot(handle);
                inner.recycle_keys(seq.keys);
                Some(seq.cont)
            }
        };
        if let Some(cont) = finished {
            sim.schedule(SimDuration::ZERO, move |sim| cont(sim, Ok(())));
        }
    }

    /// Called when a queued waiter token is granted.
    fn on_grant(&self, sim: &mut Sim, token: WaiterToken) {
        let handle = self.inner.borrow_mut().token_to_seq.remove(&token);
        let Some(handle) = handle else {
            // The sequence was cancelled (timeout) after this grant was
            // decided; the abort path already released everything.
            return;
        };
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(mut seq) = inner.take_seq(handle) {
                seq.next_idx += 1;
                seq.current = None;
                inner.restore_seq(handle, seq);
            }
        }
        self.drive_seq(sim, handle);
    }

    /// Fires when a lock sequence's timeout elapses.
    fn timeout_seq(&self, sim: &mut Sim, handle: SeqHandle) {
        let victim = {
            let mut inner = self.inner.borrow_mut();
            let Some(seq) = inner.take_seq(handle) else { return };
            inner.free_seq_slot(handle);
            inner.stats.lock_timeouts += 1;
            let mut granted = Vec::new();
            if let Some(token) = seq.current {
                inner.token_to_seq.remove(&token);
                inner.locks.cancel_waiter(&seq.keys[seq.next_idx], token, &mut granted);
            }
            // Abort the victim: undo its writes, release all its locks.
            Self::abort_in(&mut inner, seq.txn, &mut granted);
            inner.recycle_keys(seq.keys);
            (seq.txn, seq.cont, granted)
        };
        let (txn, cont, granted) = victim;
        self.dispatch_grants(sim, granted);
        sim.schedule(SimDuration::ZERO, move |sim| {
            cont(sim, Err(StoreError::LockTimeout { txn }));
        });
    }

    fn dispatch_grants(&self, sim: &mut Sim, granted: Vec<WaiterToken>) {
        for token in granted {
            let db = self.clone();
            sim.schedule(SimDuration::ZERO, move |sim| db.on_grant(sim, token));
        }
    }

    /// Rolls back and deregisters `txn`; newly grantable waiters are
    /// appended to `granted`.
    fn abort_in(inner: &mut DbInner, txn: TxnId, granted: &mut Vec<WaiterToken>) {
        if let Some(mut state) = inner.txns.remove(&txn) {
            inner.stats.aborts += 1;
            for undo in state.undo.drain(..).rev() {
                undo(&mut inner.tables);
            }
        }
        granted.extend(inner.locks.release_all(txn));
    }

    /// Aborts `txn` immediately: undoes its writes and releases its locks.
    ///
    /// Safe to call for an already-finished transaction (no-op).
    pub fn abort(&self, sim: &mut Sim, txn: TxnId) {
        let granted = {
            let mut inner = self.inner.borrow_mut();
            let mut granted = Vec::new();
            Self::abort_in(&mut inner, txn, &mut granted);
            granted
        };
        self.dispatch_grants(sim, granted);
    }

    /// Whether `shard` is currently down (failover still in progress).
    fn shard_is_down(inner: &DbInner, now: SimTime, shard: usize) -> bool {
        matches!(inner.down_until.get(shard), Some(Some(t)) if now < *t)
    }

    /// Cancels every pending lock sequence owned by `txn`, collecting the
    /// continuations to fail and any newly grantable waiters.
    fn cancel_seqs_of(
        inner: &mut DbInner,
        txn: TxnId,
        granted: &mut Vec<WaiterToken>,
        conts: &mut Vec<LockCont>,
    ) {
        for slot in 0..inner.pending.len() {
            let owns = inner.pending[slot].seq.as_ref().is_some_and(|s| s.txn == txn);
            if !owns {
                continue;
            }
            let gen = inner.pending[slot].gen;
            let Some(seq) = inner.take_seq(seq_handle(slot as u32, gen)) else { continue };
            inner.free_seq_slot(seq_handle(slot as u32, gen));
            if let Some(token) = seq.current {
                inner.token_to_seq.remove(&token);
                inner.locks.cancel_waiter(&seq.keys[seq.next_idx], token, granted);
            }
            inner.recycle_keys(seq.keys);
            conts.push(seq.cont);
        }
    }

    /// Crashes `shard` (fault injection), discarding the node's volatile
    /// state.
    ///
    /// How long the shard stays unavailable depends on the backend: under
    /// [`BackendKind::InMemory`] a node-group replica takes over after the
    /// modeled `takeover` window; under [`BackendKind::Durable`] the
    /// `takeover` argument is ignored and the shard is down while WAL
    /// replay rebuilds its state (a deterministic cost derived from the
    /// surviving log volume), after which a post-crash consistency check
    /// compares the recovered shadow state against the tables.
    ///
    /// Every in-flight transaction that has written the shard is aborted
    /// through its undo log (it would lose those writes with the node), as
    /// is every mid-commit transaction whose WAL records on the shard were
    /// still in the lost (unsynced) window; their pending lock sequences
    /// are cancelled and their continuations observe
    /// [`StoreError::ShardUnavailable`]. Unlocked reads and scans keep
    /// being served (read replicas survive the node failure); locked reads
    /// and commits touching the shard fail until the shard is back.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn crash_shard(&self, sim: &mut Sim, shard: u32, takeover: SimDuration) {
        let (granted, conts) = {
            let mut inner = self.inner.borrow_mut();
            assert!((shard as usize) < inner.down_until.len(), "shard {shard} out of range");
            inner.stats.shard_crashes += 1;
            let (down_for, lost_txns) = match inner.backend.crash_shard(shard) {
                CrashOutcome::Takeover => (takeover, Vec::new()),
                CrashOutcome::Recovered { down_for, lost_txns } => (down_for, lost_txns),
            };
            inner.down_until[shard as usize] = Some(sim.now() + down_for);
            let mut granted = Vec::new();
            let mut conts = Vec::new();
            // Mid-commit transactions whose redo records the crash lost:
            // their commits can no longer stand, so they roll back through
            // their (still intact) undo logs before the victim scan below.
            for txn in lost_txns {
                inner.stats.failover_aborts += 1;
                Self::abort_in(&mut inner, txn, &mut granted);
                Self::cancel_seqs_of(&mut inner, txn, &mut granted, &mut conts);
            }
            // Victims in TxnId order: HashMap iteration order must not leak
            // into the (deterministic) event schedule.
            let mut victims: Vec<TxnId> = inner
                .txns
                .iter()
                .filter(|(_, s)| s.writes_per_shard.contains_key(&shard))
                .map(|(id, _)| *id)
                .collect();
            victims.sort_unstable();
            for txn in victims {
                inner.stats.failover_aborts += 1;
                Self::abort_in(&mut inner, txn, &mut granted);
                Self::cancel_seqs_of(&mut inner, txn, &mut granted, &mut conts);
            }
            // With every victim rolled back, recovered shadow state and
            // authoritative tables must agree on the crashed shard.
            let inner = &mut *inner;
            inner.backend.post_crash_check(shard, inner.shards.len(), &inner.tables);
            (granted, conts)
        };
        self.dispatch_grants(sim, granted);
        for cont in conts {
            sim.schedule(SimDuration::ZERO, move |sim| {
                cont(sim, Err(StoreError::ShardUnavailable { shard }));
            });
        }
    }

    /// Schedules every [`ShardOutage`] in `outages` against this store.
    pub fn schedule_outages(&self, sim: &mut Sim, outages: &[ShardOutage]) {
        for o in outages {
            let db = self.clone();
            let (shard, takeover) = (o.shard, o.takeover);
            sim.schedule_at(o.at, move |sim| db.crash_shard(sim, shard, takeover));
        }
    }

    /// Number of transactions currently alive (auditor aid).
    #[must_use]
    pub fn active_txn_count(&self) -> usize {
        self.inner.borrow().txns.len()
    }

    /// Number of rows with at least one holder or waiter (auditor aid).
    #[must_use]
    pub fn locked_rows(&self) -> usize {
        self.inner.borrow().locks.active_rows()
    }

    /// Number of parked lock-acquisition sequences (auditor aid).
    #[must_use]
    pub fn pending_seq_count(&self) -> usize {
        self.inner.borrow().pending.iter().filter(|s| s.seq.is_some()).count()
    }

    /// Number of shards in the store.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.borrow().shards.len()
    }

    fn with_table<K: KeyCodec, V: Clone + 'static, R>(
        &self,
        table: TableHandle<K, V>,
        f: impl FnOnce(&TypedTable<K, V>) -> R,
    ) -> R {
        let inner = self.inner.borrow();
        let t = inner.tables[table.id().raw() as usize]
            .as_any()
            .downcast_ref::<TypedTable<K, V>>()
            .expect("table handle type mismatch");
        f(t)
    }

    /// Inserts a row with no transaction, no locks, and no capacity
    /// charge.
    ///
    /// This is **pre-run bulk loading only** — the evaluation pre-creates
    /// directory trees of up to 2^20 files (Table 3) that would be
    /// pointless to simulate writing. Protocol code paths must use
    /// [`Db::upsert`] inside a transaction.
    ///
    /// # Panics
    ///
    /// Panics if any transaction is active (loading must happen before the
    /// workload starts).
    pub fn bootstrap_insert<K, V>(&self, table: TableHandle<K, V>, key: K, value: V)
    where
        K: KeyCodec,
        V: Clone + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        assert!(
            inner.txns.is_empty(),
            "bootstrap_insert is only allowed before any transaction starts"
        );
        if inner.log_writes {
            let enc = EncodedKey::encode(&key, &mut inner.enc_scratch);
            let shard = shard_of(inner.shards.len(), enc.as_slice()) as u32;
            inner.backend.bootstrap_row(
                table.id(),
                shard,
                enc.as_slice(),
                std::mem::size_of::<V>(),
            );
        }
        let t = inner.tables[table.id().raw() as usize]
            .as_any_mut()
            .downcast_mut::<TypedTable<K, V>>()
            .expect("table handle type mismatch");
        t.insert(key, value);
    }

    /// Bulk-loads a strictly ascending stream of fresh rows into `table`,
    /// merging with any rows already present, with no transaction, no
    /// locks, and no capacity charge.
    ///
    /// The streaming counterpart of [`Db::bootstrap_insert`] +
    /// [`Db::bootstrap_repack`]: the sorted stream feeds the B-tree's
    /// dense bulk build directly, so the table comes out already repacked
    /// — per-entry insert traffic and the post-hoc repack pass both
    /// disappear. Pre-run bulk loading only, like `bootstrap_insert`.
    ///
    /// # Panics
    ///
    /// Panics if any transaction is active, if the stream is not strictly
    /// ascending by key, or if a streamed key already exists in the table.
    pub fn bootstrap_bulk_load<K, V>(
        &self,
        table: TableHandle<K, V>,
        rows: impl Iterator<Item = (K, V)>,
    ) where
        K: KeyCodec,
        V: Clone + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        assert!(
            inner.txns.is_empty(),
            "bootstrap_bulk_load is only allowed before any transaction starts"
        );
        let DbInner { tables, backend, shards, log_writes, .. } = inner;
        let t = tables[table.id().raw() as usize]
            .as_any_mut()
            .downcast_mut::<TypedTable<K, V>>()
            .expect("table handle type mismatch");
        if *log_writes {
            // Mirror every streamed row into the backend without breaking
            // the stream (the table build stays single-pass).
            let shard_count = shards.len();
            let backend = &mut *backend;
            let mut scratch = Vec::new();
            t.bulk_build(rows.inspect(move |(k, _)| {
                scratch.clear();
                k.encode_into(&mut scratch);
                let shard = shard_of(shard_count, &scratch) as u32;
                backend.bootstrap_row(table.id(), shard, &scratch, std::mem::size_of::<V>());
            }));
        } else {
            t.bulk_build(rows);
        }
    }

    /// Repacks every table's B-tree into dense nodes. Call once after a
    /// bulk load: [`Db::bootstrap_insert`]'s ascending key order leaves
    /// every node ~half full, so a freshly loaded namespace holds nearly
    /// 2× the node memory it needs. Iteration order, lookups, and all
    /// charged/simulated behavior are unchanged — this reshapes resident
    /// memory only, so it is safe (if pointless) to call repeatedly.
    ///
    /// # Panics
    ///
    /// Panics if any transaction is active, like [`Db::bootstrap_insert`].
    pub fn bootstrap_repack(&self) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            inner.txns.is_empty(),
            "bootstrap_repack is only allowed before any transaction starts"
        );
        for t in &mut inner.tables {
            t.repack();
        }
    }

    /// Reads a row with **no** lock and **no** capacity charge. This is the
    /// test/reporting peephole; protocol code paths must use
    /// [`Db::read_locked`] or [`Db::read_committed`].
    #[must_use]
    pub fn peek<K: KeyCodec, V: Clone + 'static>(
        &self,
        table: TableHandle<K, V>,
        key: &K,
    ) -> Option<V> {
        self.with_table(table, |t| t.get(key).cloned())
    }

    /// Scans a range with no lock and no capacity charge (test/reporting
    /// peephole).
    #[must_use]
    pub fn peek_range<K: KeyCodec, V: Clone + 'static, R: RangeBounds<K>>(
        &self,
        table: TableHandle<K, V>,
        range: R,
    ) -> Vec<(K, V)> {
        self.with_table(table, |t| t.scan(range))
    }

    /// Visits a range in ascending key order with no lock, no capacity
    /// charge, and no allocation — the visitor sibling of
    /// [`Db::peek_range`] for guard checks on hot paths (directory
    /// emptiness, lock-overlap probes) that only need to look at rows, not
    /// own them.
    pub fn peek_range_with<K, V, R>(
        &self,
        table: TableHandle<K, V>,
        range: R,
        visit: impl FnMut(&K, &V),
    ) where
        K: KeyCodec,
        V: Clone + 'static,
        R: RangeBounds<K>,
    {
        self.with_table(table, |t| t.scan_with(range, visit));
    }

    /// Number of rows in `range` with no lock and no capacity charge
    /// (guard-check peephole; allocation-free).
    #[must_use]
    pub fn peek_count_range<K, V, R>(&self, table: TableHandle<K, V>, range: R) -> usize
    where
        K: KeyCodec,
        V: Clone + 'static,
        R: RangeBounds<K>,
    {
        self.with_table(table, |t| t.count_range(range))
    }

    fn recycle_plan(&self, mut plan: ChargePlan) {
        plan.clear();
        self.inner.borrow_mut().plan_pool.push(plan);
    }

    /// Charges one batched read according to `plan` (ascending shard
    /// order), then calls `done`. The plan buffer returns to the pool.
    fn charge_batch_read<F>(&self, sim: &mut Sim, plan: ChargePlan, done: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let (shards, params) = {
            let inner = self.inner.borrow();
            (Rc::clone(&inner.shards), Rc::clone(&inner.params))
        };
        match plan.len() {
            0 => {
                self.recycle_plan(plan);
                sim.schedule(SimDuration::ZERO, done);
            }
            1 => {
                // Single-shard fast path: no join bookkeeping at all.
                let (shard, rows) = plan[0];
                self.recycle_plan(plan);
                let service = sim.rng().sample_duration(&params.batch_read)
                    + sim.rng().sample_duration(&params.batch_row_extra)
                        * u64::from(rows.saturating_sub(1));
                Station::submit(&shards[shard as usize], sim, service, done);
            }
            n => {
                let remaining = Rc::new(Cell::new(n));
                let done = Rc::new(RefCell::new(Some(done)));
                for &(shard, rows) in &plan {
                    let service = sim.rng().sample_duration(&params.batch_read)
                        + sim.rng().sample_duration(&params.batch_row_extra)
                            * u64::from(rows.saturating_sub(1));
                    let remaining = Rc::clone(&remaining);
                    let done = Rc::clone(&done);
                    Station::submit(&shards[shard as usize], sim, service, move |sim| {
                        remaining.set(remaining.get() - 1);
                        if remaining.get() == 0 {
                            if let Some(done) = done.borrow_mut().take() {
                                done(sim);
                            }
                        }
                    });
                }
                self.recycle_plan(plan);
            }
        }
    }

    /// Charges the *quiesce* cost of taking-and-releasing write locks on
    /// `rows` rows, spread evenly over all shards, then calls `done`.
    ///
    /// This is the capacity model for Phase 2 of the subtree protocol
    /// (Appendix D): every INode in the subtree is write-locked and
    /// released in a total order, which costs a lock round trip per row
    /// without modifying anything.
    pub fn charge_quiesce<F>(&self, sim: &mut Sim, rows: u64, done: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let (shards, params) = {
            let inner = self.inner.borrow();
            (Rc::clone(&inner.shards), Rc::clone(&inner.params))
        };
        if rows == 0 {
            sim.schedule(SimDuration::ZERO, done);
            return;
        }
        let per_shard = rows.div_ceil(shards.len() as u64);
        let remaining = Rc::new(Cell::new(shards.len()));
        let done = Rc::new(RefCell::new(Some(done)));
        for station in shards.iter() {
            let service = sim.rng().sample_duration(&params.lock_round) * per_shard;
            let remaining = Rc::clone(&remaining);
            let done = Rc::clone(&done);
            Station::submit(station, sim, service, move |sim| {
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    if let Some(done) = done.borrow_mut().take() {
                        done(sim);
                    }
                }
            });
        }
    }

    /// Acquires `mode` locks on `keys` (sorted and deduplicated
    /// internally), charges one batched read, and delivers the row values.
    ///
    /// The values are read *after* the locks are held, so the batch is a
    /// consistent snapshot under 2PL. On lock timeout the transaction is
    /// aborted and `cont` receives the error. Duplicate keys are permitted
    /// and each position of `keys` gets its value in order.
    pub fn read_locked<K, V, F>(
        &self,
        sim: &mut Sim,
        txn: TxnId,
        table: TableHandle<K, V>,
        keys: Vec<K>,
        mode: LockMode,
        cont: F,
    ) where
        K: KeyCodec,
        V: Clone + 'static,
        F: FnOnce(&mut Sim, StoreResult<Vec<Option<V>>>) + 'static,
    {
        let (lock_keys, plan) = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.locked_reads += 1;
            let mut lock_keys = inner.key_pool.pop().unwrap_or_default();
            for k in &keys {
                let enc = EncodedKey::encode(k, &mut inner.enc_scratch);
                lock_keys.push(LockKey { table: table.id(), key: enc });
            }
            lock_keys.sort_unstable();
            lock_keys.dedup();
            let mut plan = inner.plan_pool.pop().unwrap_or_default();
            let shard_count = inner.shards.len();
            for lk in &lock_keys {
                let shard = shard_of(shard_count, lk.key.as_slice());
                plan_note(&mut inner.shard_rows, &mut plan, shard);
            }
            plan_seal(&mut inner.shard_rows, &mut plan);
            let now = sim.now();
            let down = plan
                .iter()
                .map(|&(s, _)| s)
                .find(|&s| Self::shard_is_down(&inner, now, s as usize));
            if let Some(shard) = down {
                // A primary we need is mid-failover: fail fast and abort the
                // transaction, as an NDB client does after a data-node loss.
                inner.stats.unavailable_errors += 1;
                inner.recycle_keys(lock_keys);
                plan.clear();
                inner.plan_pool.push(plan);
                let mut granted = Vec::new();
                Self::abort_in(&mut inner, txn, &mut granted);
                drop(inner);
                self.dispatch_grants(sim, granted);
                sim.schedule(SimDuration::ZERO, move |sim| {
                    cont(sim, Err(StoreError::ShardUnavailable { shard }));
                });
                return;
            }
            (lock_keys, plan)
        };
        let db = self.clone();
        self.lock(sim, txn, lock_keys, mode, move |sim, res| match res {
            Err(e) => {
                db.recycle_plan(plan);
                cont(sim, Err(e));
            }
            Ok(()) => {
                let db2 = db.clone();
                db.charge_batch_read(sim, plan, move |sim| {
                    let values =
                        db2.with_table(table, |t| keys.iter().map(|k| t.get(k).cloned()).collect());
                    cont(sim, Ok(values));
                });
            }
        });
    }

    /// Reads rows **without locks** (read-committed-at-best: a concurrent
    /// uncommitted write *is* visible). Used only for maintenance paths
    /// (DataNode reports, liveness polling) where staleness/dirtiness is
    /// acceptable; protocol-critical reads use [`Db::read_locked`].
    pub fn read_committed<K, V, F>(
        &self,
        sim: &mut Sim,
        table: TableHandle<K, V>,
        keys: Vec<K>,
        cont: F,
    ) where
        K: KeyCodec,
        V: Clone + 'static,
        F: FnOnce(&mut Sim, Vec<Option<V>>) + 'static,
    {
        let plan = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.unlocked_reads += 1;
            let mut plan = inner.plan_pool.pop().unwrap_or_default();
            let shard_count = inner.shards.len();
            // Duplicate keys each count one row: the batch fetches every
            // requested position.
            for k in &keys {
                inner.enc_scratch.clear();
                k.encode_into(&mut inner.enc_scratch);
                let shard = shard_of(shard_count, &inner.enc_scratch);
                plan_note(&mut inner.shard_rows, &mut plan, shard);
            }
            plan_seal(&mut inner.shard_rows, &mut plan);
            plan
        };
        let db = self.clone();
        self.charge_batch_read(sim, plan, move |sim| {
            let values = db.with_table(table, |t| keys.iter().map(|k| t.get(k).cloned()).collect());
            cont(sim, values);
        });
    }

    /// Range-scans `table` without row locks, charging capacity in
    /// proportion to the result size (the rows of a range are spread over
    /// all shards by hash, so every shard pays a share).
    ///
    /// Isolation contract: callers serialize scans against writers via a
    /// coarser lock (e.g. `ls` holds a shared lock on the directory inode
    /// while writers to that directory hold it exclusively), mirroring
    /// HopsFS's parent-lock discipline.
    pub fn scan<K, V, R, F>(&self, sim: &mut Sim, table: TableHandle<K, V>, range: R, cont: F)
    where
        K: KeyCodec,
        V: Clone + 'static,
        R: RangeBounds<K> + 'static,
        F: FnOnce(&mut Sim, Vec<(K, V)>) + 'static,
    {
        self.scan_with(sim, table, range, Vec::new, |rows, k, v| rows.push((k.clone(), v.clone())), cont);
    }

    /// Range-scans `table` like [`Db::scan`], but folds the rows through a
    /// visitor instead of materializing a `Vec<(K, V)>` of clones.
    ///
    /// `init` builds the accumulator once the scan's capacity charge has
    /// drained, `step` is called per row in ascending key order under the
    /// table borrow, and `cont` receives the finished accumulator. The
    /// capacity charge (per-shard batch read + per-row share) is computed
    /// and sampled identically to [`Db::scan`], so swapping one for the
    /// other cannot perturb a simulation trace. Same isolation contract as
    /// [`Db::scan`].
    pub fn scan_with<K, V, R, T, I, S, F>(
        &self,
        sim: &mut Sim,
        table: TableHandle<K, V>,
        range: R,
        init: I,
        mut step: S,
        cont: F,
    ) where
        K: KeyCodec,
        V: Clone + 'static,
        R: RangeBounds<K> + 'static,
        T: 'static,
        I: FnOnce() -> T + 'static,
        S: FnMut(&mut T, &K, &V) + 'static,
        F: FnOnce(&mut Sim, T) + 'static,
    {
        self.inner.borrow_mut().stats.scans += 1;
        let n = self.with_table(table, |t| {
            t.count_range((range.start_bound().cloned(), range.end_bound().cloned()))
        });
        let db = self.clone();
        let finish = move |sim: &mut Sim| {
            let acc = db.with_table(table, |t| {
                let mut acc = init();
                t.scan_with(range, |k, v| step(&mut acc, k, v));
                acc
            });
            cont(sim, acc);
        };
        self.charge_scan(sim, n, finish);
    }

    /// Charges the per-shard capacity of a range scan touching `rows` rows
    /// (ascending shard order, one batch-read sample plus a per-row share
    /// per shard), then runs `finish`. Both [`Db::scan`] and
    /// [`Db::scan_with`] funnel through here so their rng sample streams
    /// are identical by construction.
    fn charge_scan<F>(&self, sim: &mut Sim, rows: usize, finish: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let (shards, params) = {
            let inner = self.inner.borrow();
            (Rc::clone(&inner.shards), Rc::clone(&inner.params))
        };
        let per_shard_rows = (rows as u64).div_ceil(shards.len() as u64);
        let remaining = Rc::new(Cell::new(shards.len()));
        let finish = Rc::new(RefCell::new(Some(finish)));
        for station in shards.iter() {
            let service = sim.rng().sample_duration(&params.batch_read)
                + sim.rng().sample_duration(&params.batch_row_extra) * per_shard_rows;
            let remaining = Rc::clone(&remaining);
            let finish = Rc::clone(&finish);
            Station::submit(station, sim, service, move |sim| {
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    if let Some(finish) = finish.borrow_mut().take() {
                        finish(sim);
                    }
                }
            });
        }
    }

    /// Inserts or replaces a row. Requires `txn` to hold the row's
    /// exclusive lock.
    ///
    /// The write applies immediately (protected by the lock) and is undone
    /// if the transaction aborts. Capacity is charged at commit.
    ///
    /// # Errors
    ///
    /// [`StoreError::LockNotHeld`] if the exclusive lock is missing;
    /// [`StoreError::UnknownTxn`] / [`StoreError::Aborted`] for dead
    /// transactions.
    pub fn upsert<K, V>(
        &self,
        txn: TxnId,
        table: TableHandle<K, V>,
        key: K,
        value: V,
    ) -> StoreResult<()>
    where
        K: KeyCodec,
        V: Clone + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        if let TxnCheck::Fail(e) = Self::check_txn(inner, txn) {
            return Err(e);
        }
        let lk =
            LockKey { table: table.id(), key: EncodedKey::encode(&key, &mut inner.enc_scratch) };
        if !inner.locks.holds(txn, &lk, LockMode::Exclusive) {
            return Err(StoreError::LockNotHeld { txn, row: lk.to_string() });
        }
        let shard = shard_of(inner.shards.len(), lk.key.as_slice()) as u32;
        let old = {
            let t = inner.tables[table.id().raw() as usize]
                .as_any_mut()
                .downcast_mut::<TypedTable<K, V>>()
                .expect("table handle type mismatch");
            t.insert(key.clone(), value)
        };
        inner.stats.rows_written += 1;
        let log_writes = inner.log_writes;
        let state = inner.txns.get_mut(&txn).expect("checked above");
        *state.writes_per_shard.entry(shard).or_default() += 1;
        if log_writes {
            state.shadow_log.push(ShadowWrite {
                table: table.id(),
                shard,
                key: lk.key.clone(),
                val_len: std::mem::size_of::<V>() as u32,
                tombstone: false,
                prior_exists: old.is_some(),
            });
        }
        state.undo.push(Box::new(move |tables| {
            let t = tables[table.id().raw() as usize]
                .as_any_mut()
                .downcast_mut::<TypedTable<K, V>>()
                .expect("table handle type mismatch");
            match old {
                Some(old) => {
                    t.insert(key, old);
                }
                None => {
                    t.remove(&key);
                }
            }
        }));
        Ok(())
    }

    /// Deletes a row, returning the previous value. Requires the exclusive
    /// lock, like [`Db::upsert`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Db::upsert`].
    pub fn remove<K, V>(
        &self,
        txn: TxnId,
        table: TableHandle<K, V>,
        key: K,
    ) -> StoreResult<Option<V>>
    where
        K: KeyCodec,
        V: Clone + 'static,
    {
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        if let TxnCheck::Fail(e) = Self::check_txn(inner, txn) {
            return Err(e);
        }
        let lk =
            LockKey { table: table.id(), key: EncodedKey::encode(&key, &mut inner.enc_scratch) };
        if !inner.locks.holds(txn, &lk, LockMode::Exclusive) {
            return Err(StoreError::LockNotHeld { txn, row: lk.to_string() });
        }
        let shard = shard_of(inner.shards.len(), lk.key.as_slice()) as u32;
        let old = {
            let t = inner.tables[table.id().raw() as usize]
                .as_any_mut()
                .downcast_mut::<TypedTable<K, V>>()
                .expect("table handle type mismatch");
            t.remove(&key)
        };
        inner.stats.rows_written += 1;
        let log_writes = inner.log_writes;
        let state = inner.txns.get_mut(&txn).expect("checked above");
        *state.writes_per_shard.entry(shard).or_default() += 1;
        if log_writes {
            state.shadow_log.push(ShadowWrite {
                table: table.id(),
                shard,
                key: lk.key.clone(),
                val_len: std::mem::size_of::<V>() as u32,
                tombstone: true,
                prior_exists: old.is_some(),
            });
        }
        let undo_old = old.clone();
        state.undo.push(Box::new(move |tables| {
            if let Some(v) = undo_old {
                let t = tables[table.id().raw() as usize]
                    .as_any_mut()
                    .downcast_mut::<TypedTable<K, V>>()
                    .expect("table handle type mismatch");
                t.insert(key, v);
            }
        }));
        Ok(old)
    }

    /// Commits `txn`: charges write + commit service on the written shards,
    /// then discards the undo log and releases all locks.
    ///
    /// Read-only transactions release their locks with no capacity charge.
    pub fn commit<F>(&self, sim: &mut Sim, txn: TxnId, cont: F)
    where
        F: FnOnce(&mut Sim, StoreResult<()>) + 'static,
    {
        // Claim the write set without cloning it; the undo log stays in
        // place until `finish`, so a concurrent abort still rolls back.
        let (writes, sync_at, granted) = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            let mut granted = Vec::new();
            let mut sync_at = None;
            let writes: Result<BTreeMap<u32, u32>, StoreError> =
                match Self::check_txn(&inner, txn) {
                    TxnCheck::Fail(e) => Err(e),
                    TxnCheck::Ok => {
                        let state = inner.txns.get_mut(&txn).expect("checked");
                        let writes = std::mem::take(&mut state.writes_per_shard);
                        let shadow = std::mem::take(&mut state.shadow_log);
                        match writes
                            .keys()
                            .copied()
                            .find(|&s| Self::shard_is_down(&inner, now, s as usize))
                        {
                            Some(shard) => {
                                // The coordinator cannot reach a written
                                // shard: the commit fails and the undo log
                                // rolls the transaction back.
                                inner.stats.unavailable_errors += 1;
                                Self::abort_in(&mut inner, txn, &mut granted);
                                Err(StoreError::ShardUnavailable { shard })
                            }
                            None => {
                                if !writes.is_empty() {
                                    // WAL-ordered commit: the redo records
                                    // go to the log now; they become
                                    // durable at the group-commit boundary
                                    // returned here.
                                    sync_at = inner.backend.begin_commit(now, txn, shadow);
                                }
                                Ok(writes)
                            }
                        }
                    }
                };
            (writes, sync_at, granted)
        };
        self.dispatch_grants(sim, granted);
        let writes = match writes {
            Err(e) => {
                sim.schedule(SimDuration::ZERO, move |sim| cont(sim, Err(e)));
                return;
            }
            Ok(w) => w,
        };
        let db = self.clone();
        let finish = move |sim: &mut Sim| {
            let (granted, fate) = {
                let mut inner = db.inner.borrow_mut();
                let fate = inner.backend.finish_commit(txn);
                match fate {
                    CommitFate::Lost { .. } => {
                        // A crash lost this commit's WAL records while the
                        // capacity charge was in flight; the crash path
                        // already rolled the transaction back through its
                        // undo log, so only the error delivery is left.
                        inner.stats.unavailable_errors += 1;
                    }
                    CommitFate::Untracked | CommitFate::Durable => {
                        if inner.txns.remove(&txn).is_some() {
                            // Undo log dropped with the state: the writes
                            // are durable.
                            inner.stats.commits += 1;
                        }
                    }
                }
                (inner.locks.release_all(txn), fate)
            };
            db.dispatch_grants(sim, granted);
            match fate {
                CommitFate::Lost { shard } => {
                    cont(sim, Err(StoreError::ShardUnavailable { shard }));
                }
                CommitFate::Untracked | CommitFate::Durable => cont(sim, Ok(())),
            }
        };
        if writes.is_empty() {
            finish(sim);
            return;
        }
        // Charge each written shard; commit overhead lands on the
        // transaction-coordinator shard (chosen per transaction so the
        // coordination load spreads evenly across data nodes, as NDB's
        // round-robin transaction coordinators do). Under the durable
        // backend the commit additionally waits for its group-commit sync
        // leg, so completion implies the redo records are durable.
        let (shards, params) = {
            let inner = self.inner.borrow();
            (Rc::clone(&inner.shards), Rc::clone(&inner.params))
        };
        let coordinator = *writes
            .keys()
            .nth((txn.raw() % writes.len() as u64) as usize)
            .expect("non-empty write set");
        let remaining = Rc::new(Cell::new(writes.len() + usize::from(sync_at.is_some())));
        let finish = Rc::new(RefCell::new(Some(finish)));
        for (&shard, &rows) in &writes {
            let mut service = sim.rng().sample_duration(&params.row_write) * u64::from(rows);
            if shard == coordinator {
                service += sim.rng().sample_duration(&params.commit);
            }
            let remaining = Rc::clone(&remaining);
            let finish = Rc::clone(&finish);
            Station::submit(&shards[shard as usize], sim, service, move |sim| {
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    if let Some(finish) = finish.borrow_mut().take() {
                        finish(sim);
                    }
                }
            });
        }
        if let Some(at) = sync_at {
            let db = self.clone();
            let remaining = Rc::clone(&remaining);
            let finish = Rc::clone(&finish);
            sim.schedule_at(at, move |sim| {
                db.inner.borrow_mut().backend.sync_boundary(txn);
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    if let Some(finish) = finish.borrow_mut().take() {
                        finish(sim);
                    }
                }
            });
        }
    }
}
