//! Differential property tests for the streaming bulk build:
//! [`Db::bootstrap_bulk_load`] must be observationally identical to
//! per-row [`Db::bootstrap_insert`] followed by [`Db::bootstrap_repack`].
//!
//! Contents and iteration order are compared exhaustively over randomized
//! key sets, both into an empty table and merged over pre-existing rows.
//! Node occupancy needs allocator introspection, so its equivalence is
//! pinned empirically by the alloc-stats-gated bootstrap budget test in
//! `crates/bench/tests/bootstrap_budget.rs` (both paths terminate in
//! `BTreeMap::from_iter` over a sorted stream, which is what produces the
//! dense nodes).

use lambda_sim::params::StoreParams;
use lambda_sim::SimDuration;
use lambda_store::Db;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn fresh_db() -> Db {
    Db::new(&StoreParams::default(), SimDuration::from_secs(5))
}

/// Disjoint (existing, streamed) key sets: every key carries a value
/// derived from it so value mismatches are also detectable.
fn key_sets() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    (
        proptest::collection::btree_set(0u64..10_000, 0..200),
        proptest::collection::btree_set(0u64..10_000, 0..200),
    )
        .prop_map(|(existing, streamed): (BTreeSet<u64>, BTreeSet<u64>)| {
            let streamed: Vec<u64> = streamed.difference(&existing).copied().collect();
            (existing.into_iter().collect(), streamed)
        })
}

fn value_of(k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1F5
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bulk-loading an ascending stream over pre-existing rows yields
    /// exactly the table that per-row insertion plus a repack yields:
    /// same rows, same order, same values.
    #[test]
    fn bulk_build_matches_insert_then_repack((existing, streamed) in key_sets()) {
        let bulk = fresh_db();
        let bulk_t = bulk.create_table::<u64, u64>("rows");
        let serial = fresh_db();
        let serial_t = serial.create_table::<u64, u64>("rows");

        for &k in &existing {
            bulk.bootstrap_insert(bulk_t, k, value_of(k));
            serial.bootstrap_insert(serial_t, k, value_of(k));
        }
        bulk.bootstrap_bulk_load(bulk_t, streamed.iter().map(|&k| (k, value_of(k))));
        for &k in &streamed {
            serial.bootstrap_insert(serial_t, k, value_of(k));
        }
        serial.bootstrap_repack();

        let got = bulk.peek_range(bulk_t, ..);
        let want = serial.peek_range(serial_t, ..);
        prop_assert_eq!(got, want);
    }

    /// The same equivalence on composite `(u64, u64)` keys — the shape of
    /// the children index, where per-parent blocks are streamed back to
    /// back and ordering mistakes would land between blocks.
    #[test]
    fn bulk_build_matches_on_composite_keys(
        parents in proptest::collection::btree_set(0u64..40, 1..8),
        names in proptest::collection::btree_set(0u64..40, 1..8),
    ) {
        let bulk = fresh_db();
        let bulk_t = bulk.create_table::<(u64, u64), u64>("children");
        let serial = fresh_db();
        let serial_t = serial.create_table::<(u64, u64), u64>("children");

        let rows: Vec<((u64, u64), u64)> = parents
            .iter()
            .flat_map(|&p| names.iter().map(move |&n| ((p, n), value_of(p ^ n))))
            .collect();
        bulk.bootstrap_bulk_load(bulk_t, rows.iter().cloned());
        for ((p, n), v) in rows {
            serial.bootstrap_insert(serial_t, (p, n), v);
        }
        serial.bootstrap_repack();

        let got = bulk.peek_range(bulk_t, ..);
        let want = serial.peek_range(serial_t, ..);
        prop_assert_eq!(got, want);
    }
}

#[test]
#[should_panic(expected = "not strictly ascending")]
fn bulk_build_rejects_unsorted_streams() {
    let db = fresh_db();
    let t = db.create_table::<u64, u64>("rows");
    db.bootstrap_bulk_load(t, [(2u64, 0u64), (1, 0)].into_iter());
}

#[test]
#[should_panic(expected = "key collision")]
fn bulk_build_rejects_keys_already_present() {
    let db = fresh_db();
    let t = db.create_table::<u64, u64>("rows");
    db.bootstrap_insert(t, 7, 1);
    db.bootstrap_bulk_load(t, [(7u64, 2u64)].into_iter());
}
