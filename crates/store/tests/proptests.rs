//! Property tests for the transactional store: arbitrary interleavings of
//! transactions agree with a sequential model, aborts roll back fully, and
//! committed state is exactly the set of committed writes.

use lambda_sim::params::StoreParams;
use lambda_sim::{Sim, SimDuration};
use lambda_store::{Db, LockMode};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One scripted transaction: read-modify-write over a key set, then
/// commit or abort.
#[derive(Debug, Clone)]
struct TxnScript {
    keys: Vec<u64>,
    add: u64,
    commit: bool,
    start_ms: u64,
}

fn txn_strategy() -> impl Strategy<Value = TxnScript> {
    (
        proptest::collection::btree_set(0u64..12, 1..4),
        1u64..100,
        proptest::bool::weighted(0.8),
        0u64..50,
    )
        .prop_map(|(keys, add, commit, start_ms)| TxnScript {
            keys: keys.into_iter().collect(),
            add,
            commit,
            start_ms,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counters incremented by concurrent read-modify-write transactions
    /// never lose updates: the final value of each key equals the sum of
    /// the increments of every *committed* transaction that touched it.
    #[test]
    fn no_lost_updates_under_concurrency(scripts in proptest::collection::vec(txn_strategy(), 1..16)) {
        let mut sim = Sim::new(99);
        let db = Db::new(&StoreParams::default(), SimDuration::from_secs(30));
        let table = db.create_table::<u64, u64>("counters");
        let committed: Rc<RefCell<Vec<TxnScript>>> = Rc::new(RefCell::new(Vec::new()));

        for script in scripts.clone() {
            let db = db.clone();
            let committed = Rc::clone(&committed);
            sim.schedule(SimDuration::from_millis(script.start_ms), move |sim| {
                let txn = db.begin();
                let keys = script.keys.clone();
                let db2 = db.clone();
                db.read_locked(sim, txn, table, keys.clone(), LockMode::Exclusive, move |sim, rows| {
                    let Ok(rows) = rows else {
                        // Lock timeout: the transaction was aborted; it
                        // must contribute nothing.
                        return;
                    };
                    for (key, row) in keys.iter().zip(rows) {
                        let value = row.unwrap_or(0) + script.add;
                        db2.upsert(txn, table, *key, value).expect("lock held");
                    }
                    if script.commit {
                        let committed = Rc::clone(&committed);
                        let script = script.clone();
                        db2.commit(sim, txn, move |_sim, r| {
                            if r.is_ok() {
                                committed.borrow_mut().push(script.clone());
                            }
                        });
                    } else {
                        db2.abort(sim, txn);
                    }
                });
            });
        }
        sim.run();

        let mut expect: BTreeMap<u64, u64> = BTreeMap::new();
        for script in committed.borrow().iter() {
            for key in &script.keys {
                *expect.entry(*key).or_default() += script.add;
            }
        }
        for key in 0u64..12 {
            let got = db.peek(table, &key).unwrap_or(0);
            let want = expect.get(&key).copied().unwrap_or(0);
            prop_assert_eq!(got, want, "key {} diverged", key);
        }
        // Sanity: aborted scripts really did not commit.
        prop_assert!(committed.borrow().len() <= scripts.len());
    }

    /// Reads under shared locks always observe a committed prefix: the
    /// value of a key only ever grows by committed increments, and a
    /// reader never sees a value larger than the total committed so far
    /// plus in-flight (i.e. never sees rolled-back garbage).
    #[test]
    fn locked_reads_never_see_aborted_writes(
        n_writers in 1usize..8,
        n_readers in 1usize..8,
    ) {
        let mut sim = Sim::new(7);
        let db = Db::new(&StoreParams::default(), SimDuration::from_secs(30));
        let table = db.create_table::<u64, u64>("k");
        // All writers write the *same* key with a recognizable pattern:
        // committed writers write even values, aborted writers write odd.
        for i in 0..n_writers {
            let db = db.clone();
            sim.schedule(SimDuration::from_millis(i as u64 * 3), move |sim| {
                let txn = db.begin();
                let db2 = db.clone();
                let commit = i % 2 == 0;
                db.read_locked(sim, txn, table, vec![0], LockMode::Exclusive, move |sim, r| {
                    if r.is_err() {
                        return;
                    }
                    let value = if commit { (i as u64 + 1) * 2 } else { (i as u64) * 2 + 1 };
                    db2.upsert(txn, table, 0, value).expect("lock held");
                    if commit {
                        db2.commit(sim, txn, |_s, _r| {});
                    } else {
                        db2.abort(sim, txn);
                    }
                });
            });
        }
        let observations = Rc::new(RefCell::new(Vec::new()));
        for i in 0..n_readers {
            let db = db.clone();
            let obs = Rc::clone(&observations);
            sim.schedule(SimDuration::from_millis(i as u64 * 4 + 1), move |sim| {
                let txn = db.begin();
                let db2 = db.clone();
                db.read_locked(sim, txn, table, vec![0], LockMode::Shared, move |sim, rows| {
                    if let Ok(rows) = rows {
                        if let Some(v) = rows[0] {
                            obs.borrow_mut().push(v);
                        }
                    }
                    db2.commit(sim, txn, |_s, _r| {});
                });
            });
        }
        sim.run();
        for v in observations.borrow().iter() {
            prop_assert_eq!(v % 2, 0, "reader observed an uncommitted (odd) value {}", v);
        }
    }
}
