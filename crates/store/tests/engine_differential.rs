//! Differential property tests: the arena-backed B+ tree engine
//! ([`lambda_store::bptree::BpTree`]) against a `std::collections::BTreeMap`
//! oracle.
//!
//! The engine swap under [`TypedTable`] is only sound if the two maps are
//! observationally identical — same insert/remove return values, same
//! sorted iteration order, same range contents under every bound shape,
//! same counts — under *arbitrary interleavings*, not just the clean
//! streams the bootstrap uses. These tests drive randomized op scripts
//! over both engines and compare after every step, on both `u64` keys
//! (the inodes table) and composite `(u64, NameKey)` keys (the children
//! index, where ordering mixes integer and string comparison).
//!
//! Occupancy pins mirror `bulk_build.rs`: a bulk-built tree must be dense
//! (≈100% full leaves) and a churned-then-repacked tree must return to
//! density without changing contents.
//!
//! [`TypedTable`]: lambda_store::Db

use lambda_store::bptree::{BpTree, LEAF_CAP};
use lambda_store::NameKey;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

/// One scripted engine operation. Keys are drawn from a small space so
/// scripts revisit keys (exercising replace, remove-hit, and remove-miss).
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    /// Compare `scan_with`, `range`, and `count_range` over `[lo, hi)`.
    Scan(u64, u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        3 => (0..key_space).prop_map(Op::Remove),
        1 => (0..key_space, 0..key_space).prop_map(|(a, b)| Op::Scan(a.min(b), a.max(b))),
    ]
}

/// Interns a test name: differential scripts generate names dynamically,
/// so back `NameKey`'s `&'static str` with a leaked allocation (test-only;
/// the real store uses the component interner).
fn name(s: &str) -> NameKey {
    NameKey::new(Box::leak(s.to_string().into_boxed_str()))
}

fn assert_same_u64(tree: &BpTree<u64, u64>, model: &BTreeMap<u64, u64>) {
    assert_eq!(tree.len(), model.len(), "len diverged");
    let got: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, want, "iteration order diverged");
    tree.check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary insert/remove/scan interleavings on `u64` keys: every
    /// individual return value and every range view matches the oracle.
    #[test]
    fn u64_scripts_match_btreemap(ops in proptest::collection::vec(op_strategy(512), 1..400)) {
        let mut tree: BpTree<u64, u64> = BpTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v), "insert({})", k);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k), "remove({})", k);
                    prop_assert_eq!(tree.get(&k), None);
                }
                Op::Scan(lo, hi) => {
                    let got: Vec<(u64, u64)> =
                        tree.range(&(lo..hi)).map(|(k, v)| (*k, *v)).collect();
                    let want: Vec<(u64, u64)> =
                        model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(&got, &want, "range {}..{}", lo, hi);
                    let mut visited = Vec::new();
                    tree.scan_with(&(lo..hi), |k, v| visited.push((*k, *v)));
                    prop_assert_eq!(&visited, &want, "scan_with {}..{}", lo, hi);
                    prop_assert_eq!(tree.count_range(&(lo..hi)), want.len());
                }
            }
        }
        assert_same_u64(&tree, &model);
    }

    /// Every bound shape (inclusive/exclusive/unbounded on either side)
    /// yields exactly `BTreeMap::range`'s view, after churn has left
    /// routing separators that no longer exist in any leaf.
    #[test]
    fn range_bounds_match_after_churn(
        seed_keys in proptest::collection::btree_set(0u64..2_048, 32..256),
        remove_stride in 2u64..7,
        lo in 0u64..2_048,
        span in 0u64..1_024,
    ) {
        let mut tree: BpTree<u64, u64> = BpTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &seed_keys {
            tree.insert(k, k ^ 0xA5A5);
            model.insert(k, k ^ 0xA5A5);
        }
        for &k in seed_keys.iter().filter(|k| *k % remove_stride == 0) {
            tree.remove(&k);
            model.remove(&k);
        }
        let hi = lo + span;
        let bounds = [
            (Bound::Included(lo), Bound::Excluded(hi)),
            (Bound::Included(lo), Bound::Included(hi)),
            (Bound::Excluded(lo), Bound::Unbounded),
            (Bound::Unbounded, Bound::Included(hi)),
            (Bound::Unbounded, Bound::Unbounded),
        ];
        for r in bounds {
            let got: Vec<u64> = tree.range(&r).map(|(k, _)| *k).collect();
            let want: Vec<u64> = model.range(r).map(|(k, _)| *k).collect();
            prop_assert_eq!(&got, &want, "bounds {:?}", r);
            prop_assert_eq!(tree.count_range(&r), want.len(), "count over {:?}", r);
        }
        assert_same_u64(&tree, &model);
    }

    /// Composite `(u64, NameKey)` keys — the children index's shape, where
    /// ordering falls through an integer compare into a string compare and
    /// per-directory blocks sit back to back. Scans slice one parent's
    /// block the way `ls` does.
    #[test]
    fn composite_key_scripts_match_btreemap(
        parents in proptest::collection::btree_set(0u64..24, 1..6),
        names in proptest::collection::btree_set("[a-z]{1,12}", 1..24),
        remove_mask in any::<u64>(),
        ls_parent in 0u64..24,
    ) {
        let names: Vec<NameKey> = names.iter().map(|n| name(n)).collect();
        let mut tree: BpTree<(u64, NameKey), u64> = BpTree::new();
        let mut model: BTreeMap<(u64, NameKey), u64> = BTreeMap::new();
        for &p in &parents {
            for (i, &n) in names.iter().enumerate() {
                let v = p << 8 | i as u64;
                prop_assert_eq!(tree.insert((p, n), v), model.insert((p, n), v));
            }
        }
        for (i, &p) in parents.iter().enumerate() {
            for (j, &n) in names.iter().enumerate() {
                if remove_mask >> ((i * 7 + j) % 64) & 1 == 1 {
                    prop_assert_eq!(tree.remove(&(p, n)), model.remove(&(p, n)));
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        let got: Vec<(u64, NameKey)> = tree.iter().map(|(k, _)| *k).collect();
        let want: Vec<(u64, NameKey)> = model.keys().copied().collect();
        prop_assert_eq!(got, want, "composite iteration order diverged");
        tree.check_invariants();

        // One directory's listing: the per-parent block slice.
        let r = (ls_parent, NameKey::MIN)..(ls_parent + 1, NameKey::MIN);
        let got: Vec<NameKey> = tree.range(&r).map(|((_, n), _)| *n).collect();
        let want: Vec<NameKey> = model.range(r.clone()).map(|((_, n), _)| *n).collect();
        prop_assert_eq!(&got, &want, "listing of parent {}", ls_parent);
        prop_assert_eq!(tree.count_range(&r), want.len());
    }

    /// `from_ascending` equals insert-then-repack observationally *and*
    /// structurally: same contents and order, and both sit at ≈100% leaf
    /// occupancy (the bulk build's reason to exist).
    #[test]
    fn bulk_build_matches_inserts_and_is_dense(
        keys in proptest::collection::btree_set(0u64..100_000, 1..1_500),
    ) {
        let bulk: BpTree<u64, u64> =
            BpTree::from_ascending(keys.iter().map(|&k| (k, k * 3)));
        let mut serial: BpTree<u64, u64> = BpTree::new();
        for &k in &keys {
            serial.insert(k, k * 3);
        }
        serial.repack();

        let got: Vec<(u64, u64)> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u64, u64)> = serial.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
        bulk.check_invariants();

        // Occupancy pin, mirroring bulk_build.rs: every leaf except
        // possibly the last is full.
        for t in [&bulk, &serial] {
            let stats = t.node_stats();
            prop_assert!(
                stats.leaves <= keys.len() / LEAF_CAP + 1,
                "sparse leaves after dense build: {:?}",
                stats
            );
        }
    }
}

/// Deterministic worst-case churn: drain the tree through every removal
/// order a script is unlikely to hit (ascending, descending, inside-out)
/// and make sure it collapses to a usable empty tree each time.
#[test]
fn drain_orders_collapse_cleanly() {
    let n = 3 * 1024u64;
    let orders: [Box<dyn Fn(u64) -> u64>; 3] = [
        Box::new(|i| i),
        Box::new(move |i| n - 1 - i),
        Box::new(move |i| if i % 2 == 0 { n / 2 + i / 2 } else { n / 2 - 1 - i / 2 }),
    ];
    for order in orders {
        let mut t: BpTree<u64, u64> = BpTree::from_ascending((0..n).map(|k| (k, k)));
        for i in 0..n {
            assert_eq!(t.remove(&order(i)), Some(order(i)));
        }
        assert!(t.is_empty());
        assert_eq!(t.node_stats().height, 1);
        t.insert(7, 7);
        assert_eq!(t.get(&7), Some(&7));
        t.check_invariants();
    }
}
