//! # lambdafs-repro
//!
//! A from-scratch Rust reproduction of **λFS** (Carver, Han, Zhang, Zheng,
//! Cheng — *λFS: A Scalable and Elastic Distributed File System Metadata
//! Service using Serverless Functions*, ASPLOS 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | deterministic discrete-event simulation substrate |
//! | [`store`] | sharded transactional metadata store (MySQL Cluster NDB analog) |
//! | [`lsm`] | LSM-tree storage engine (LevelDB analog) |
//! | [`coord`] | coordination service (ZooKeeper analog) |
//! | [`faas`] | serverless platform emulator (OpenWhisk analog) |
//! | [`namespace`] | paths, inodes, partitioner, metadata cache, DataNodes |
//! | [`fs`] | **λFS itself**: serverless NameNodes, hybrid RPC, coherence |
//! | [`baselines`] | HopsFS(+Cache), CephFS-style, InfiniCache-style, (λ)IndexFS |
//! | [`workload`] | the industrial workload, micro-benchmarks, tree-test |
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results. Runnable entry points live in `examples/` and in
//! `crates/bench/src/bin/` (one binary per figure/table of the paper).
//!
//! ```
//! use lambdafs_repro::fs::{LambdaFs, LambdaFsConfig};
//! use lambdafs_repro::namespace::FsOp;
//! use lambdafs_repro::sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(1);
//! let fs = LambdaFs::build(&mut sim, LambdaFsConfig {
//!     deployments: 4,
//!     clients: 8,
//!     ..Default::default()
//! });
//! fs.start(&mut sim);
//! fs.submit(&mut sim, 0, FsOp::Mkdir("/hello".parse().unwrap()), Box::new(|_s, r| {
//!     assert!(r.is_ok());
//! }));
//! sim.run_for(SimDuration::from_secs(30));
//! fs.stop(&mut sim);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lambda_baselines as baselines;
pub use lambda_coord as coord;
pub use lambda_faas as faas;
pub use lambda_fs as fs;
pub use lambda_lsm as lsm;
pub use lambda_namespace as namespace;
pub use lambda_sim as sim;
pub use lambda_store as store;
pub use lambda_workload as workload;
