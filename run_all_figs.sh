#!/bin/bash
set -u
cd /root/repo
mkdir -p results
for bin in tab01_loc fig08a_industrial_25k fig08b_industrial_50k fig08c_perf_per_cost \
           fig09_cumulative_cost fig10_latency_cdfs fig11_client_scaling \
           fig12_resource_scaling fig13_perf_per_cost_micro fig14_autoscaling_ablation \
           tab03_subtree_mv fig15_fault_tolerance fig16_indexfs ablation_knobs; do
  echo "=== RUNNING $bin $(date +%T) ==="
  timeout 1800 ./target/release/$bin > results/$bin.txt 2>&1
  echo "=== DONE $bin rc=$? $(date +%T) ==="
done
echo ALL_FIGS_DONE
