#!/bin/bash
set -u
cd /root/repo
for bin in fig08a_industrial_25k fig08b_industrial_50k fig08c_perf_per_cost \
           fig09_cumulative_cost fig10_latency_cdfs fig15_fault_tolerance tab03_subtree_mv; do
  echo "=== RUNNING $bin $(date +%T) ==="
  timeout 1800 ./target/release/$bin > results/$bin.txt 2>&1
  echo "=== DONE $bin rc=$? $(date +%T) ==="
done
echo INDUSTRIAL_REFRESH_DONE
