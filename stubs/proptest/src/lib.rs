//! Offline drop-in replacement for the subset of `proptest` 1.x used by
//! this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! `[patch.crates-io]` table substitutes this crate for the real
//! `proptest`. It implements the pieces the workspace's property tests
//! actually exercise:
//!
//! * the [`Strategy`] trait with `prop_map`,
//! * strategies for integer ranges, tuples, `&str` character-class
//!   patterns, [`Just`], [`any`], `collection::{vec, btree_set}`,
//!   `sample::select`, and `bool::weighted`,
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros,
//! * [`ProptestConfig`] with `with_cases`.
//!
//! Semantic differences from the real crate: cases are generated from a
//! fixed per-test seed (deterministic across runs, no `PROPTEST_*` env
//! handling), there is **no shrinking** (a failing case prints its inputs
//! and panics as-is), and `proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

use std::fmt::Debug;

/// The deterministic generator behind every strategy (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator (SplitMix64 expansion).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
///
/// Unlike real proptest there is no value tree and no shrinking:
/// `generate` produces the final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Debug,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`: `any::<u16>()`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                let off = ((u128::from(rng.next_u64()) * span as u128) >> 64) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128) - (lo as i128) + 1;
                assert!(span > 0, "empty range strategy");
                let off = ((u128::from(rng.next_u64()) * span as u128) >> 64) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `&str` strategies interpret the string as a small regex-like pattern:
/// literal characters, `[a-z08]` character classes, and `{m}` / `{m,n}`
/// repetition of the preceding atom. This covers the patterns the
/// workspace's tests use (e.g. `"[a-d]{1,2}"`); anything richer panics.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in atoms {
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Parses a pattern into `(choices, min_reps, max_reps)` atoms.
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let mut atoms: Vec<(Vec<char>, usize, usize)> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') => {
                            let lo = prev.unwrap_or_else(|| {
                                panic!("unsupported pattern {pattern:?}: leading '-' in class")
                            });
                            let hi = chars
                                .next()
                                .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                            for v in (lo as u32 + 1)..=(hi as u32) {
                                class.push(char::from_u32(v).expect("valid char range"));
                            }
                            prev = None;
                        }
                        Some(ch) => {
                            class.push(ch);
                            prev = Some(ch);
                        }
                        None => panic!("unterminated class in {pattern:?}"),
                    }
                }
                atoms.push((class, 1, 1));
            }
            '{' => {
                let spec: String = chars.by_ref().take_while(|c| *c != '}').collect();
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition bound"),
                        hi.trim().parse().expect("repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("repetition bound");
                        (n, n)
                    }
                };
                let atom = atoms
                    .last_mut()
                    .unwrap_or_else(|| panic!("unsupported pattern {pattern:?}: dangling {{}}"));
                atom.1 = lo;
                atom.2 = hi;
            }
            '.' | '*' | '+' | '?' | '(' | ')' | '|' | '\\' => {
                panic!("unsupported pattern {pattern:?}: this stub only handles classes and {{m,n}}")
            }
            ch => atoms.push((vec![ch], 1, 1)),
        }
    }
    atoms
}

/// A size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// Collection strategies: `vec` and `btree_set`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::fmt::Debug;

    /// A strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `BTreeSet<S::Value>` aiming for a size in `size`
    /// (bounded retries — a small value universe may yield fewer
    /// elements, matching real proptest's best-effort behavior).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            for _ in 0..(target * 20).max(20) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// `true` with probability `p`.
    #[must_use]
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weight out of range: {p}");
        Weighted { p }
    }

    /// See [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit() < self.p
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Picks uniformly from a fixed set of options.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// The weighted union behind [`prop_oneof!`].
pub struct Union<T> {
    branches: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Builds a union from `(weight, strategy)` branches.
    #[must_use]
    pub fn new(branches: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        let total = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { branches, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.branches {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

/// Boxes a strategy for use in [`Union`]. (Macro plumbing.)
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a of the test name: a stable per-test seed.
#[must_use]
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Module-path aliases matching `proptest::prelude::prop::*`.
pub mod prop {
    pub use crate::{bool, collection, sample};
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($cfg) $($rest)*);
    };
    (@cfg($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_of(stringify!($name)));
                for case in 0..config.cases {
                    let values = ($( $crate::Strategy::generate(&($strat), &mut rng) ,)+);
                    let shown = format!("{values:#?}");
                    let ($($arg,)+) = values;
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {case}/{} of `{}` failed for inputs:\n{shown}",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks among strategies, optionally weighted: `prop_oneof![a, b]` or
/// `prop_oneof![2 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (($weight) as u32, $crate::boxed($strat)) ),+ ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (1u32, $crate::boxed($strat)) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = crate::TestRng::new(1);
        let s = (0..10usize, 5u64..=6).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..16).contains(&v));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = crate::TestRng::new(2);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 800, "weighted union drifted: {trues}/1000 true");
    }

    #[test]
    fn pattern_strategy_generates_matching_strings() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-d]{1,2}".generate(&mut rng);
            assert!((1..=2).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "bad chars: {s:?}");
        }
    }

    #[test]
    fn collections_honor_size_ranges() {
        let mut rng = crate::TestRng::new(4);
        let v = crate::collection::vec(0..100u64, 3..7);
        let b = crate::collection::btree_set(0u64..4, 1..=3);
        for _ in 0..100 {
            let xs = v.generate(&mut rng);
            assert!((3..7).contains(&xs.len()));
            let set = b.generate(&mut rng);
            assert!((1..=3).contains(&set.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_drives_cases(x in 0..50usize, ys in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 50);
            prop_assert!(ys.len() < 4);
            prop_assert_eq!(x + 1, 1 + x);
        }
    }
}
