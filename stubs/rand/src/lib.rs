//! Offline drop-in replacement for the subset of `rand` 0.8 used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! `[patch.crates-io]` table substitutes this crate for the real `rand`.
//! It provides `StdRng`, `SeedableRng`, `Rng::{gen, gen_range, gen_bool}`,
//! and the `distributions::uniform` trait plumbing that `lambda-sim`'s
//! `SimRng` wrapper is written against.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 stream the real `StdRng` uses, which is fine here: nothing in
//! the workspace depends on the concrete stream, only on determinism
//! (identical seeds ⇒ identical draws) and reasonable statistical quality.

#![forbid(unsafe_code)]

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution (uniform over
    /// all values for integers, uniform in `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniformly samples from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a uniform draw in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> the full f64 mantissa precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Standard and uniform distributions.
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// Types samplable "naturally": integers over their full range, floats
    /// uniform in `[0, 1)`, bools as a fair coin.
    pub trait Standard: Sized {
        /// Draws one value.
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Standard for u128 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64())
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64()) as f32
        }
    }

    /// Uniform sampling over ranges.
    pub mod uniform {
        use super::super::{unit_f64, RngCore};
        use core::ops::{Range, RangeInclusive};

        /// Types that can be drawn uniformly from a bounded range.
        pub trait SampleUniform: Sized {
            /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when
            /// `inclusive`).
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
                -> Self;
        }

        macro_rules! impl_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                        assert!(span > 0, "cannot sample from an empty range");
                        // Multiply-shift (Lemire) keeps the draw cheap; any
                        // residual bias over these spans is far below what
                        // the simulator could observe.
                        let word = u128::from(rng.next_u64());
                        let off = (word * span as u128) >> 64;
                        (lo as i128 + off as i128) as $t
                    }
                }
            )*};
        }
        impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                lo + unit_f64(rng.next_u64()) * (hi - lo)
            }
        }

        impl SampleUniform for f32 {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
            }
        }

        /// Range forms accepted by [`Rng::gen_range`](crate::Rng::gen_range).
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
                T::sample_between(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                T::sample_between(rng, lo, hi, true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleUniform;
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_reproduce_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&x));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_draws_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean drifted: {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 produced {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_range_sampling_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = u64::sample_between(&mut rng, 0, u64::MAX, true);
        let _ = i64::sample_between(&mut rng, i64::MIN, i64::MAX, true);
    }
}
