//! Offline drop-in replacement for the subset of `criterion` 0.5 used by
//! this workspace's bench targets.
//!
//! The build environment has no access to crates.io, so the workspace
//! `[patch.crates-io]` table substitutes this crate. It keeps the same
//! authoring API — [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], the [`criterion_group!`] /
//! [`criterion_main!`] macros — but the measurement core is a simple
//! calibrated timing loop: warm up, pick an iteration count that makes a
//! sample take a few milliseconds, take `sample_size` samples, report the
//! median ns/iter to stdout. No statistical analysis, no HTML reports,
//! no `target/criterion` history.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How samples are collected. Accepted for API compatibility; this stub
/// times every benchmark the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Criterion picks (default).
    Auto,
    /// Equal iterations per sample.
    Flat,
    /// Linearly increasing iterations per sample.
    Linear,
}

/// How batched inputs are grouped. Accepted for API compatibility; this
/// stub always sets up one input per timed call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output: criterion would batch many per allocation.
    SmallInput,
    /// Large setup output: fewer per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Shared measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings { sample_size: 12, target_sample_time: Duration::from_millis(8) }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), settings: self.settings, _parent: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.settings, f);
        self
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sampling mode (accepted, not used by the stub's timer).
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), self.settings, f);
        self
    }

    /// Ends the group. (No-op here; kept for API compatibility.)
    pub fn finish(self) {}
}

/// Times the closure the benchmark hands work to.
pub struct Bencher {
    settings: Settings,
    /// Median ns per iteration, filled in by `iter`/`iter_batched`.
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and calibration: find an iteration count that makes one
        // sample take roughly `target_sample_time`.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };
        let sample_iters =
            ((self.settings.target_sample_time.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut samples = Vec::with_capacity(self.settings.sample_size);
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..sample_iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / sample_iters as f64);
        }
        self.median_ns = median(&mut samples);
    }

    /// Times `routine` on fresh inputs from `setup`; only `routine` is on
    /// the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.settings.sample_size);
        for _ in 0..self.settings.sample_size {
            // One timed call per sample: setup cost stays off the clock and
            // inputs are never reused, which is correct for every BatchSize.
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
        self.median_ns = median(&mut samples);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    samples[samples.len() / 2]
}

fn run_benchmark<F>(name: &str, settings: Settings, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { settings, median_ns: f64::NAN };
    f(&mut b);
    if b.median_ns.is_nan() {
        println!("{name:<48} (no measurement: bencher closure never called iter)");
        return;
    }
    let (value, unit) = if b.median_ns >= 1e9 {
        (b.median_ns / 1e9, "s")
    } else if b.median_ns >= 1e6 {
        (b.median_ns / 1e6, "ms")
    } else if b.median_ns >= 1e3 {
        (b.median_ns / 1e3, "us")
    } else {
        (b.median_ns, "ns")
    };
    println!("{name:<48} time: {value:>9.3} {unit}/iter");
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards flags like `--bench`; accept and
            // ignore them the way the real harness does for unknowns.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_a_positive_median() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sampling_mode(SamplingMode::Flat).sample_size(4);
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.iter().map(|&x| x as u64).sum::<u64>(), BatchSize::SmallInput);
        });
        g.finish();
    }
}
