//! Offline drop-in replacement for the subset of the `bytes` crate used by
//! this workspace (`lambda-lsm`'s keys and values).
//!
//! The build environment has no access to crates.io, so the workspace
//! `[patch.crates-io]` table substitutes this crate. [`Bytes`] here is a
//! cheaply clonable, immutable byte string backed by `Arc<[u8]>` — the same
//! contract the real crate provides for the operations the LSM tree uses
//! (construction, ordering, hashing, slicing via `Deref`).

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte string.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty byte string.
    #[must_use]
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new byte string.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the byte string is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes(Arc::from(s.into_bytes()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn ordering_matches_slices() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = Bytes::from(b"abd".to_vec());
        assert!(a < b);
        assert_eq!(a, Bytes::from("abc"));
        assert_eq!(&a[..], b"abc");
    }

    #[test]
    fn works_as_ordered_map_key_with_slice_lookup() {
        let mut m: BTreeMap<Bytes, u32> = BTreeMap::new();
        m.insert(Bytes::from("k1"), 1);
        m.insert(Bytes::from("k2"), 2);
        assert_eq!(m.get(&b"k1"[..]), Some(&1));
        let hits: Vec<u32> = m
            .range::<[u8], _>((
                std::ops::Bound::Included(&b"k1"[..]),
                std::ops::Bound::Excluded(&b"k2"[..]),
            ))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn debug_is_printable() {
        let b = Bytes::copy_from_slice(&[b'a', 0x00, b'"']);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\\\"\"");
    }
}
