//! Randomized crash injection across seeds: NameNodes die at arbitrary
//! moments while a mixed write-heavy workload runs. Afterwards the
//! namespace must be well-formed, subtree locks released, and the overall
//! completion rate high (paper §3.6/§5.6).

use lambdafs_repro::fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambdafs_repro::namespace::FsOp;
use lambdafs_repro::sim::{Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn chaos_run(seed: u64) {
    let mut sim = Sim::new(seed);
    let deployments = 5;
    let fs = Rc::new(LambdaFs::build(
        &mut sim,
        LambdaFsConfig {
            deployments,
            clients: 10,
            client_vms: 2,
            ..Default::default()
        },
    ));
    fs.start(&mut sim);
    let dirs = fs.bootstrap_tree(&"/".parse().unwrap(), 10, 4);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));

    let ok = Rc::new(RefCell::new(0u32));
    let failed = Rc::new(RefCell::new(0u32));
    let mut kills = 0;
    let total = 80u32;
    for i in 0..total {
        let dir = &dirs[i as usize % dirs.len()];
        let op = match i % 5 {
            0 => FsOp::CreateFile(dir.join(&format!("x{seed}_{i}")).unwrap()),
            1 => FsOp::ReadFile(dir.join(&format!("file{:05}", i % 4)).unwrap()),
            2 => FsOp::Ls(dir.clone()),
            3 => FsOp::Mkdir(dir.join(&format!("sub{seed}_{i}")).unwrap()),
            _ => FsOp::Stat(dir.clone()),
        };
        let o = Rc::clone(&ok);
        let f = Rc::clone(&failed);
        fs.submit(&mut sim, (i % 10) as usize, op, Box::new(move |_s, r| {
            if r.is_ok() {
                *o.borrow_mut() += 1;
            } else {
                *f.borrow_mut() += 1;
            }
        }));
        // Crash at pseudo-random moments derived from the seed.
        if (i.wrapping_mul(2654435761).wrapping_add(seed as u32)) % 11 == 3 {
            for k in 0..deployments {
                if fs.kill_one_namenode(&mut sim, (i + k) % deployments).is_some() {
                    kills += 1;
                    break;
                }
            }
        }
        sim.run_for(SimDuration::from_millis(200));
    }
    sim.run_until(SimTime::from_secs(150));
    fs.stop(&mut sim);

    assert!(kills >= 3, "seed {seed}: only {kills} kills");
    let done = *ok.borrow() + *failed.borrow();
    assert_eq!(done, total, "seed {seed}: {done}/{total} ops reached a verdict");
    assert!(
        *ok.borrow() >= total - 6,
        "seed {seed}: only {} of {total} ops succeeded ({} failed)",
        ok.borrow(),
        failed.borrow()
    );
    let problems = fs.check_consistency();
    assert!(problems.is_empty(), "seed {seed}: namespace corrupt: {problems:?}");
    assert_eq!(
        fs.db().table_len(fs.schema().subtree_locks),
        0,
        "seed {seed}: leaked subtree locks"
    );
}

#[test]
fn crashes_never_corrupt_the_namespace() {
    for seed in [1, 7, 23, 99, 1234] {
        chaos_run(seed);
    }
}
