//! Whole-stack determinism: identical seeds reproduce identical runs —
//! down to every latency sample — and different seeds genuinely differ.

use lambdafs_repro::fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambdafs_repro::sim::{Sim, SimDuration};
use lambdafs_repro::workload::{run_spotify, SpotifyConfig};
use std::rc::Rc;

fn run(seed: u64) -> (u64, u64, u64, u64, f64, f64, usize) {
    let mut sim = Sim::new(seed);
    let fs = Rc::new(LambdaFs::build(
        &mut sim,
        LambdaFsConfig { deployments: 4, clients: 8, client_vms: 2, ..Default::default() },
    ));
    fs.start(&mut sim);
    let cfg = SpotifyConfig {
        base_throughput: 300.0,
        duration: SimDuration::from_secs(20),
        dirs: 12,
        files_per_dir: 8,
        ..Default::default()
    };
    let dirs = fs.bootstrap_tree(&"/".parse().unwrap(), cfg.dirs, cfg.files_per_dir);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));
    let run = run_spotify(&mut sim, Rc::clone(&fs), cfg);
    fs.stop(&mut sim);
    let metrics = fs.run_metrics();
    let m = metrics.borrow();
    (
        run.generated,
        m.completed,
        m.tcp_rpcs,
        m.http_rpcs,
        m.mean_latency().as_secs_f64(),
        fs.pay_meter().total(),
        fs.active_namenodes(),
    )
}

#[test]
fn identical_seeds_reproduce_bit_identical_runs() {
    let a = run(31337);
    let b = run(31337);
    assert_eq!(a, b, "same seed must reproduce the same run exactly");
}

#[test]
fn different_seeds_produce_different_runs() {
    let a = run(1);
    let b = run(2);
    // The burst process differs, so at minimum the latency profile and
    // request counts move.
    assert_ne!(a, b, "different seeds produced identical runs");
}
