//! The headline shapes of the paper's evaluation, asserted end-to-end on
//! a scaled-down industrial workload:
//!
//! * λFS sustains higher throughput than vanilla HopsFS;
//! * λFS's read latency is far below HopsFS's;
//! * λFS costs less than the provisioned HopsFS cluster;
//! * λFS's pay-per-use cost is below its own provisioned-model cost;
//! * caches actually serve the read traffic (high hit ratio).

use lambdafs_repro::baselines::{HopsFs, HopsFsConfig};
use lambdafs_repro::fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambdafs_repro::namespace::OpClass;
use lambdafs_repro::sim::params::StoreParams;
use lambdafs_repro::sim::{Sim, SimDuration};
use lambdafs_repro::workload::{run_spotify, SpotifyConfig};
use std::rc::Rc;

const SCALE: f64 = 10.0;

fn spotify() -> SpotifyConfig {
    SpotifyConfig {
        base_throughput: 25_000.0 / SCALE,
        duration: SimDuration::from_secs(125),
        dirs: 205,
        files_per_dir: 24,
        ..Default::default()
    }
}

struct Outcome {
    avg_tp: f64,
    peak15: f64,
    read_p50_ms: f64,
    cost: f64,
    completed: u64,
    generated: u64,
}

fn run_lambda(seed: u64) -> (Outcome, f64, f64) {
    let mut sim = Sim::new(seed);
    let fs = Rc::new(LambdaFs::build(
        &mut sim,
        LambdaFsConfig {
            deployments: 8,
            cluster_vcpus: 64,
            clients: 102,
            client_vms: 8,
            store: StoreParams::default().slowed(SCALE),
            ..Default::default()
        },
    ));
    fs.start(&mut sim);
    let cfg = spotify();
    let dirs = fs.bootstrap_tree(&"/".parse().unwrap(), cfg.dirs, cfg.files_per_dir);
    fs.prewarm_with(&mut sim, &dirs);
    sim.run_for(SimDuration::from_secs(8));
    let run = run_spotify(&mut sim, Rc::clone(&fs), cfg);
    fs.stop(&mut sim);
    assert!(fs.check_consistency().is_empty());
    let stats = fs.cache_stats();
    let hit_ratio = stats.hit_ratio();
    let simplified = fs.simplified_meter().total();
    let metrics = fs.run_metrics();
    let mut m = metrics.borrow_mut();
    (
        Outcome {
            avg_tp: m.completed as f64 / 125.0,
            peak15: m.peak_sustained_throughput(15),
            read_p50_ms: m
                .latency
                .get_mut(&OpClass::Read)
                .map(|r| r.percentile(0.5).as_millis_f64())
                .unwrap_or(f64::MAX),
            cost: fs.pay_meter().total(),
            completed: m.completed,
            generated: run.generated,
        },
        hit_ratio,
        simplified,
    )
}

fn run_hops(seed: u64) -> Outcome {
    let mut sim = Sim::new(seed);
    let mut cfg = HopsFsConfig::vanilla(64, 102);
    cfg.store = StoreParams::default().slowed(SCALE);
    let fs = Rc::new(HopsFs::build(&mut sim, cfg));
    fs.start(&mut sim);
    let run = run_spotify(&mut sim, Rc::clone(&fs), spotify());
    fs.stop(&mut sim);
    assert!(fs.check_consistency().is_empty());
    let cost = fs.cost_meter().total();
    let metrics = fs.run_metrics();
    let mut m = metrics.borrow_mut();
    Outcome {
        avg_tp: m.completed as f64 / 125.0,
        peak15: m.peak_sustained_throughput(15),
        read_p50_ms: m
            .latency
            .get_mut(&OpClass::Read)
            .map(|r| r.percentile(0.5).as_millis_f64())
            .unwrap_or(f64::MAX),
        cost,
        completed: m.completed,
        generated: run.generated,
    }
}

#[test]
fn lambda_beats_hopsfs_on_the_industrial_workload() {
    let (lambda, hit_ratio, simplified) = run_lambda(42);
    let hops = run_hops(42);

    // Both systems were offered the same load (deterministic generator).
    assert_eq!(lambda.generated, hops.generated);

    // λFS keeps up with the offered load.
    assert!(
        lambda.completed as f64 >= 0.98 * lambda.generated as f64,
        "λFS completed only {}/{}",
        lambda.completed,
        lambda.generated
    );
    // Throughput: λFS at least matches HopsFS on average (paper: 1.19x —
    // the gap comes from HopsFS falling behind at bursts, which the next
    // assertion pins down directly)...
    assert!(
        lambda.avg_tp >= 0.97 * hops.avg_tp,
        "λFS tp {} < HopsFS tp {}",
        lambda.avg_tp,
        hops.avg_tp
    );
    // ... and λFS's peak *sustained* throughput rides the bursts that cap
    // HopsFS at its store ceiling (paper: 4.3x).
    assert!(
        lambda.peak15 > 1.3 * hops.peak15,
        "λFS peak15 {} vs HopsFS {}",
        lambda.peak15,
        hops.peak15
    );
    // Read latency: λFS's median read is a cache hit (1-2ms TCP); HopsFS
    // medians include the slowed store round trip (paper: 6.9x-20x lower
    // for λFS). Medians are robust to the lock-wait tail that the store
    // slow-down magnifies at reduced scale.
    assert!(
        lambda.read_p50_ms < 3.0,
        "λFS read p50 {}ms is not cache-hit territory",
        lambda.read_p50_ms
    );
    assert!(
        lambda.read_p50_ms * 3.0 < hops.read_p50_ms,
        "λFS read p50 {}ms vs HopsFS {}ms",
        lambda.read_p50_ms,
        hops.read_p50_ms
    );
    // Cost: λFS cheaper than the provisioned cluster (paper: 7.14x).
    assert!(
        lambda.cost * 2.0 < hops.cost,
        "λFS ${} vs HopsFS ${}",
        lambda.cost,
        hops.cost
    );
    // Pay-per-use beats λFS's own provisioned accounting (Fig. 9's
    // "simplified" curve sits above the real one).
    assert!(lambda.cost < simplified, "pay-per-use ${} >= simplified ${simplified}", lambda.cost);
    // The cache is doing the work (paper's reads rarely touch NDB).
    assert!(hit_ratio > 0.75, "cache hit ratio only {hit_ratio:.2}");
}
