//! Cross-crate integration: every metadata service reaches the same final
//! namespace when driven with the same operation sequence, and every
//! store-backed service's namespace remains well-formed.

use lambdafs_repro::baselines::{CephFs, CephFsConfig, HopsFs, HopsFsConfig, InfiniCacheStyle};
use lambdafs_repro::fs::{DfsService, LambdaFs, LambdaFsConfig};
use lambdafs_repro::namespace::{DfsPath, FsOp, OpOutcome, OpResult};
use lambdafs_repro::sim::{Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

fn p(s: &str) -> DfsPath {
    s.parse().unwrap()
}

fn run_op(sim: &mut Sim, svc: &dyn DfsService, client: usize, op: FsOp) -> OpResult {
    let slot: Rc<RefCell<Option<OpResult>>> = Rc::new(RefCell::new(None));
    let out = Rc::clone(&slot);
    svc.submit_op(sim, client, op, Box::new(move |_s, r| *out.borrow_mut() = Some(r)));
    let deadline = sim.now() + SimDuration::from_secs(120);
    while slot.borrow().is_none() && sim.now() < deadline {
        if !sim.step() {
            break;
        }
    }
    let r = slot.borrow_mut().take();
    r.expect("operation did not complete")
}

/// The shared script: a deterministic mixed sequence over a small tree.
fn script() -> Vec<FsOp> {
    let mut ops = vec![FsOp::Mkdir(p("/base"))];
    for d in 0..4 {
        ops.push(FsOp::Mkdir(p(&format!("/base/d{d}"))));
        for f in 0..6 {
            ops.push(FsOp::CreateFile(p(&format!("/base/d{d}/f{f}"))));
        }
    }
    for d in 0..4 {
        ops.push(FsOp::Ls(p(&format!("/base/d{d}"))));
        ops.push(FsOp::Stat(p(&format!("/base/d{d}/f0"))));
        ops.push(FsOp::ReadFile(p(&format!("/base/d{d}/f1"))));
    }
    ops.push(FsOp::Mv(p("/base/d0/f2"), p("/base/d1/moved")));
    ops.push(FsOp::Delete(p("/base/d2/f3")));
    ops.push(FsOp::Delete(p("/base/d3"))); // subtree delete (6 files)
    ops
}

/// Executes the script and returns the sorted listing fingerprint.
fn fingerprint(sim: &mut Sim, svc: &dyn DfsService) -> Vec<String> {
    for (i, op) in script().into_iter().enumerate() {
        run_op(sim, svc, i % 4, op).expect("scripted op failed");
    }
    let mut out = Vec::new();
    let OpOutcome::Listing(top) = run_op(sim, svc, 0, FsOp::Ls(p("/base"))).unwrap() else {
        panic!("expected listing")
    };
    for name in top {
        let dir = format!("/base/{name}");
        out.push(dir.clone());
        if let Ok(OpOutcome::Listing(children)) = run_op(sim, svc, 1, FsOp::Ls(p(&dir))) {
            for c in children {
                out.push(format!("{dir}/{c}"));
            }
        }
    }
    out.sort();
    out
}

#[test]
fn all_systems_agree_on_the_final_namespace() {
    let lambda = {
        let mut sim = Sim::new(11);
        let fs = LambdaFs::build(
            &mut sim,
            LambdaFsConfig { deployments: 4, clients: 4, client_vms: 2, ..Default::default() },
        );
        fs.start(&mut sim);
        let fp = fingerprint(&mut sim, &fs);
        assert!(fs.check_consistency().is_empty(), "λFS namespace corrupt");
        fs.stop(&mut sim);
        fp
    };
    let hops = {
        let mut sim = Sim::new(11);
        let fs = HopsFs::build(&mut sim, HopsFsConfig::vanilla(64, 4));
        fs.start(&mut sim);
        let fp = fingerprint(&mut sim, &fs);
        assert!(fs.check_consistency().is_empty(), "HopsFS namespace corrupt");
        fs.stop(&mut sim);
        fp
    };
    let hops_cache = {
        let mut sim = Sim::new(11);
        let fs = HopsFs::build(&mut sim, HopsFsConfig::with_cache(64, 4));
        fs.start(&mut sim);
        let fp = fingerprint(&mut sim, &fs);
        fs.stop(&mut sim);
        fp
    };
    let ceph = {
        let mut sim = Sim::new(11);
        let fs = CephFs::build(&mut sim, CephFsConfig::sized(64, 4));
        fs.start(&mut sim);
        let fp = fingerprint(&mut sim, &fs);
        fs.stop(&mut sim);
        fp
    };
    let infini = {
        let mut sim = Sim::new(11);
        let base = LambdaFsConfig {
            deployments: 4,
            clients: 4,
            client_vms: 2,
            ..Default::default()
        };
        let fs = InfiniCacheStyle::build(&mut sim, base);
        fs.start(&mut sim);
        let fp = fingerprint(&mut sim, &fs);
        fs.stop(&mut sim);
        fp
    };
    assert!(!lambda.is_empty());
    assert_eq!(lambda, hops, "λFS vs HopsFS namespace divergence");
    assert_eq!(lambda, hops_cache, "λFS vs HopsFS+Cache namespace divergence");
    assert_eq!(lambda, ceph, "λFS vs CephFS namespace divergence");
    assert_eq!(lambda, infini, "λFS vs InfiniCache-style namespace divergence");
    // The subtree delete removed d3 entirely.
    assert!(!lambda.iter().any(|p| p.contains("/d3")));
    // The mv moved f2 into d1.
    assert!(lambda.contains(&"/base/d1/moved".to_string()));
    assert!(!lambda.contains(&"/base/d0/f2".to_string()));
}
